"""Self-contained HTML report over a run ledger.

``python -m repro report --ledger runs.jsonl -o report.html`` renders
the ledger as one static page — inline CSS/JS, no network, openable
from a file:// URL — with the paper's comparative shape:

* engine comparison tables (Table II/III style: modeled seconds, edge
  cut, imbalance, speedup per graph/k cell);
* per-phase stacked breakdowns of the latest run of every
  configuration (Table II's phase split, as bars);
* the ledger's trend over time: modeled seconds per configuration
  across successive records, so quality/speed trajectories are visible
  the way longitudinal partitioner engineering needs them to be;
* the Hardware page (records with an ``hw`` block): a roofline scatter
  of every kernel, per-phase GPU/PCIe/CPU utilization timelines, and a
  bound-ness/utilization summary per configuration — with a graceful
  note when the ledger predates the hw schema.

Colors follow the entity: each phase name and each configuration keeps
one palette slot for the whole page, assigned in first-appearance
order and never re-cycled; past eight, series fold into a muted
"other" tone.  Light and dark render from the same validated palette
via ``prefers-color-scheme``.
"""

from __future__ import annotations

import html
import time

__all__ = ["html_report", "write_html_report"]

#: Validated categorical palette (light, dark) — fixed slot order.
_SERIES = [
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
]
_OTHER = ("#898781", "#898781")  # muted fold-in for slot 9+


def _slot_css() -> str:
    light = "\n".join(
        f"  --series-{i + 1}: {pair[0]};" for i, pair in enumerate(_SERIES)
    )
    dark = "\n".join(
        f"    --series-{i + 1}: {pair[1]};" for i, pair in enumerate(_SERIES)
    )
    return light, dark


class _SlotMap:
    """Entity -> palette slot, fixed in first-appearance order."""

    def __init__(self) -> None:
        self._slots: dict[str, int] = {}

    def slot(self, name: str) -> int | None:
        """1-based slot, or None once the eight slots are taken."""
        if name not in self._slots:
            if len(self._slots) >= len(_SERIES):
                return None
            self._slots[name] = len(self._slots) + 1
        return self._slots[name]

    def var(self, name: str) -> str:
        slot = self.slot(name)
        return f"var(--series-{slot})" if slot else "var(--series-other)"

    def items(self) -> list[tuple[str, str]]:
        return [(name, f"var(--series-{i})") for name, i in self._slots.items()]


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt_ms(seconds) -> str:
    return f"{seconds * 1e3:,.3f}" if isinstance(seconds, (int, float)) else "—"


def _fmt_num(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.4f}"
    return f"{int(value):,}"


def _config_series(record: dict) -> str:
    cfg = record.get("config", {})
    label = f"{cfg.get('engine', '?')} · {cfg.get('graph', '?')} · k={cfg.get('k', '?')}"
    if cfg.get("seed") is not None:
        label += f" · seed={cfg['seed']}"
    return label


# ----------------------------------------------------------------------
def _stat_tiles(records: list[dict]) -> str:
    engines = {r.get("config", {}).get("engine") for r in records}
    graphs = {r.get("config", {}).get("graph") for r in records}
    configs = {r.get("fingerprint") for r in records}
    tiles = [
        ("runs recorded", f"{len(records):,}"),
        ("configurations", f"{len(configs):,}"),
        ("engines", f"{len(engines):,}"),
        ("graphs", f"{len(graphs):,}"),
    ]
    cells = "".join(
        f'<div class="tile"><div class="tile-value">{_esc(v)}</div>'
        f'<div class="tile-label">{_esc(k)}</div></div>'
        for k, v in tiles
    )
    return f'<div class="tiles">{cells}</div>'


def _latest_by_fingerprint(records: list[dict]) -> list[dict]:
    latest: dict[str, dict] = {}
    for record in records:
        latest[record.get("fingerprint", id(record))] = record
    return list(latest.values())


def _comparison_tables(records: list[dict]) -> str:
    """One Table II/III-style block per (graph, k): engines side by side."""
    groups: dict[tuple, list[dict]] = {}
    for record in _latest_by_fingerprint(records):
        cfg = record.get("config", {})
        groups.setdefault((cfg.get("graph"), cfg.get("k")), []).append(record)
    blocks: list[str] = []
    for (graph, k), group in sorted(groups.items(), key=lambda kv: str(kv[0])):
        group.sort(key=lambda r: r["run"]["modeled_seconds"], reverse=True)
        slowest = group[0]["run"]["modeled_seconds"]
        rows = []
        for record in group:
            seconds = record["run"]["modeled_seconds"]
            quality = record.get("quality", {})
            speedup = (slowest / seconds) if seconds else float("inf")
            h2d = record.get("metrics", {}).get("counters", {}).get(
                "transfer.h2d_bytes"
            )
            rows.append(
                "<tr>"
                f"<td>{_esc(record['config'].get('engine'))}</td>"
                f"<td class='num'>{_esc(record['config'].get('seed', '—'))}</td>"
                f"<td class='num'>{_fmt_ms(seconds)}</td>"
                f"<td class='num'>{speedup:.2f}×</td>"
                f"<td class='num'>{_fmt_num(quality.get('cut'))}</td>"
                f"<td class='num'>{_fmt_num(quality.get('imbalance'))}</td>"
                f"<td class='num'>{_fmt_num(h2d)}</td>"
                "</tr>"
            )
        blocks.append(
            f"<h3>{_esc(graph)} · k={_esc(k)}</h3>"
            "<table><thead><tr><th>engine</th><th class='num'>seed</th>"
            "<th class='num'>modeled ms</th><th class='num'>speedup</th>"
            "<th class='num'>edge cut</th><th class='num'>imbalance</th>"
            "<th class='num'>H→D bytes</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    return "".join(blocks)


def _phase_bars(records: list[dict], phase_slots: _SlotMap) -> str:
    """Horizontal stacked phase breakdown, one bar per configuration,
    widths on one shared ms scale so bars compare across engines."""
    latest = _latest_by_fingerprint(records)
    if not latest:
        return ""
    max_total = max(r["run"]["modeled_seconds"] for r in latest) or 1.0
    bars: list[str] = []
    for record in latest:
        total = record["run"]["modeled_seconds"]
        segments = []
        for name, entry in record.get("phases", {}).items():
            seconds = entry.get("seconds", 0.0)
            if seconds <= 0:
                continue
            width = 100.0 * seconds / max_total
            tip = (
                f"{name}: {seconds * 1e3:,.3f} ms "
                f"({entry.get('share', 0.0):.1%} of this run)"
            )
            segments.append(
                f'<div class="seg" data-tip="{_esc(tip)}" '
                f'style="width:{width:.3f}%;background:{phase_slots.var(name)}">'
                "</div>"
            )
        bars.append(
            '<div class="bar-row">'
            f'<div class="bar-label">{_esc(_config_series(record))}</div>'
            f'<div class="bar">{"".join(segments)}</div>'
            f'<div class="bar-total">{_fmt_ms(total)} ms</div>'
            "</div>"
        )
    legend = "".join(
        f'<span class="key"><span class="swatch" style="background:{var}"></span>'
        f"{_esc(name)}</span>"
        for name, var in phase_slots.items()
    )
    return (
        f'<div class="legend">{legend}</div><div class="bars">{"".join(bars)}</div>'
    )


def _trend_svg(records: list[dict], series_slots: _SlotMap) -> str:
    """Modeled-seconds trend per configuration across ledger order."""
    series: dict[str, list[float]] = {}
    for record in records:
        series.setdefault(_config_series(record), []).append(
            record["run"]["modeled_seconds"]
        )
    multi = {k: v for k, v in series.items() if len(v) >= 2}
    if not multi:
        return (
            "<p class='muted'>Not enough repeated runs for a trend yet — "
            "profile the same configuration again to start one.</p>"
        )
    width, height, pad = 720, 180, 10
    vmax = max(max(v) for v in multi.values())
    vmin = min(min(v) for v in multi.values())
    span = (vmax - vmin) or vmax or 1.0
    nmax = max(len(v) for v in multi.values())
    parts: list[str] = []
    for name, values in multi.items():
        color = series_slots.var(name)
        points = []
        for i, v in enumerate(values):
            x = pad + (width - 2 * pad) * (i / max(1, nmax - 1))
            y = height - pad - (height - 2 * pad) * ((v - vmin) / span)
            points.append((x, y, v, i))
        polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y, _, _ in points)
        parts.append(
            f'<polyline points="{polyline}" fill="none" stroke="{color}" '
            'stroke-width="2" stroke-linejoin="round"/>'
        )
        for x, y, v, i in points:
            tip = f"{name} — run {i + 1}: {v * 1e3:,.3f} ms"
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}" '
                f'stroke="var(--surface-1)" stroke-width="2" '
                f'data-tip="{_esc(tip)}"/>'
            )
        lx, ly, lv, _ = points[-1]
        parts.append(
            f'<text x="{min(lx + 8, width - 4):.1f}" y="{ly:.1f}" '
            f'class="svg-label" text-anchor="start">{lv * 1e3:,.2f} ms</text>'
        )
    legend = "".join(
        f'<span class="key"><span class="swatch" style="background:{var}"></span>'
        f"{_esc(name)}</span>"
        for name, var in series_slots.items()
        if name in multi
    )
    return (
        f'<div class="legend">{legend}</div>'
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        'aria-label="Modeled seconds per configuration across ledger records">'
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="var(--baseline)" stroke-width="1"/>'
        f"{''.join(parts)}</svg>"
        "<p class='muted'>x: successive ledger records of the configuration; "
        "y: total modeled milliseconds (shared scale).</p>"
    )


def _trend_table(records: list[dict]) -> str:
    """The trend's table view (accessibility fallback for the SVG)."""
    rows = []
    for i, record in enumerate(records):
        quality = record.get("quality", {})
        rows.append(
            "<tr>"
            f"<td class='num'>{i}</td>"
            f"<td>{_esc(_config_series(record))}</td>"
            f"<td class='mono'>{_esc(record.get('run_id', '')[:21])}</td>"
            f"<td class='num'>{_fmt_ms(record['run']['modeled_seconds'])}</td>"
            f"<td class='num'>{_fmt_num(quality.get('cut'))}</td>"
            f"<td class='num'>{_fmt_num(quality.get('imbalance'))}</td>"
            "</tr>"
        )
    return (
        "<details><summary>Ledger as a table (all records)</summary>"
        "<table><thead><tr><th class='num'>#</th><th>configuration</th>"
        "<th>run id</th><th class='num'>modeled ms</th><th class='num'>cut</th>"
        "<th class='num'>imbalance</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )


# ----------------------------------------------------------------------
#: Fixed palette slots for the hardware page's resource slices.
_HW_RESOURCE_VARS = {
    "gpu": "var(--series-1)",
    "pcie": "var(--series-2)",
    "cpu": "var(--series-3)",
}
_HW_BOUND_VARS = {
    "dram-bandwidth": "var(--series-1)",
    "compute": "var(--series-3)",
    "latency": "var(--series-4)",
    "atomic": "var(--series-8)",
}


def _hw_records(records: list[dict]) -> list[dict]:
    return [r for r in _latest_by_fingerprint(records) if r.get("hw")]


def _hw_roofline_svg(hw_recs: list[dict], series_slots: _SlotMap) -> str:
    """Log-log roofline scatter: every kernel of every configuration."""
    import math

    pts: list[tuple[float, float, str, str]] = []
    peak_bw = peak_flops = None
    for record in hw_recs:
        gpu = record["hw"].get("gpu")
        if not gpu or not gpu.get("kernels"):
            continue
        peak_bw, peak_flops = gpu["peak_bandwidth"], gpu["peak_flops"]
        color = series_slots.var(_config_series(record))
        for r in gpu["kernels"]:
            if r["intensity"] is None or r["achieved_flops"] <= 0:
                continue
            tip = (
                f"{r['name']} — {_config_series(record)}: "
                f"{r['intensity']:.3f} ops/B, "
                f"{r['achieved_flops'] / 1e9:,.2f} GF/s, "
                f"dram {r['dram_utilization']:.1%}, bound: {r['bound']}"
            )
            pts.append((r["intensity"], r["achieved_flops"], tip, color))
    if not pts or not peak_bw:
        return (
            "<p class='muted'>No per-kernel roofline data — only CPU "
            "engines (or aggregate-only service drains) in this ledger.</p>"
        )
    width, height, pad = 720, 260, 28
    ridge = peak_flops / peak_bw
    xs = [p[0] for p in pts] + [ridge]
    ys = [p[1] for p in pts] + [peak_flops]
    lx_lo, lx_hi = math.log10(min(xs) / 4), math.log10(max(xs) * 4)
    ly_lo, ly_hi = math.log10(min(ys) / 16), math.log10(peak_flops * 2)

    def px(x):
        return pad + (width - 2 * pad) * (math.log10(x) - lx_lo) / (lx_hi - lx_lo)

    def py(y):
        return (height - pad) - (height - 2 * pad) * (
            (math.log10(y) - ly_lo) / (ly_hi - ly_lo)
        )

    roof = []
    for i in range(65):
        x = 10 ** (lx_lo + (lx_hi - lx_lo) * i / 64)
        y = min(peak_flops, x * peak_bw)
        if 10 ** ly_lo <= y:
            roof.append(f"{px(x):.1f},{py(y):.1f}")
    parts = [
        f'<polyline points="{" ".join(roof)}" fill="none" '
        'stroke="var(--baseline)" stroke-width="2"/>'
    ]
    for x, y, tip, color in pts:
        parts.append(
            f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="4" fill="{color}" '
            f'stroke="var(--surface-1)" stroke-width="1.5" '
            f'data-tip="{_esc(tip)}"/>'
        )
    parts.append(
        f'<text x="{px(ridge):.1f}" y="{py(peak_flops) - 8:.1f}" '
        f'class="svg-label" text-anchor="middle">'
        f"peak {peak_flops / 1e9:,.0f} GF/s · ridge {ridge:.2f} ops/B</text>"
    )
    legend = "".join(
        f'<span class="key"><span class="swatch" style="background:'
        f'{series_slots.var(_config_series(r))}"></span>'
        f"{_esc(_config_series(r))}</span>"
        for r in hw_recs
        if r["hw"].get("gpu", {}).get("kernels")
    )
    return (
        f'<div class="legend">{legend}</div>'
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        'aria-label="Roofline: arithmetic intensity vs achieved ops/s">'
        f"{''.join(parts)}</svg>"
        "<p class='muted'>x: arithmetic intensity (device ops per DRAM "
        "byte moved, log); y: achieved ops/s (log). The line is the "
        "machine's roofline; hover points for kernel and bound-ness.</p>"
    )


def _hw_utilization_bars(hw_recs: list[dict]) -> str:
    """Per-configuration timeline bar: each phase's seconds split into
    GPU / PCIe / CPU slices, in phase order, on one shared scale."""
    rows = [r for r in hw_recs if r["hw"].get("phases")]
    if not rows:
        return ""
    max_total = max(
        sum(p["seconds"] for p in r["hw"]["phases"]) for r in rows
    ) or 1.0
    bars = []
    for record in rows:
        segments = []
        total = 0.0
        for phase in record["hw"]["phases"]:
            total += phase["seconds"]
            for res in ("gpu", "pcie", "cpu"):
                seconds = phase[f"{res}_seconds"]
                if seconds <= 0:
                    continue
                width = 100.0 * seconds / max_total
                util = phase.get(
                    "gpu_dram_utilization" if res == "gpu"
                    else "pcie_utilization" if res == "pcie" else "", 0.0
                )
                tip = f"{phase['phase']} · {res}: {seconds * 1e3:,.3f} ms"
                if res in ("gpu", "pcie"):
                    tip += f" (util {util:.1%})"
                segments.append(
                    f'<div class="seg" data-tip="{_esc(tip)}" '
                    f'style="width:{width:.3f}%;'
                    f'background:{_HW_RESOURCE_VARS[res]}"></div>'
                )
        bars.append(
            '<div class="bar-row">'
            f'<div class="bar-label">{_esc(_config_series(record))}</div>'
            f'<div class="bar">{"".join(segments)}</div>'
            f'<div class="bar-total">{_fmt_ms(total)} ms</div>'
            "</div>"
        )
    legend = "".join(
        f'<span class="key"><span class="swatch" style="background:{var}">'
        f"</span>{_esc(name)}</span>"
        for name, var in _HW_RESOURCE_VARS.items()
    )
    return (
        f'<div class="legend">{legend}</div><div class="bars">{"".join(bars)}'
        "</div><p class='muted'>Each bar runs left-to-right in phase "
        "order; slice widths are modeled seconds on one shared scale.</p>"
    )


def _hw_boundness_table(hw_recs: list[dict]) -> str:
    """Bound-ness + utilization summary, one row per configuration."""
    rows = []
    for record in hw_recs:
        hw = record["hw"]
        gpu = hw.get("gpu")
        if gpu and gpu["kernel_seconds"] > 0:
            bound = gpu["bound_seconds"]
            dominant = max(bound, key=bound.get)
            badge = (
                f'<span class="key"><span class="swatch" style="background:'
                f'{_HW_BOUND_VARS[dominant]}"></span>{_esc(dominant)}</span>'
            )
            dram = f"{gpu['dram_utilization']:.1%}"
        else:
            badge, dram = "<span class='muted'>no GPU work</span>", "—"
        pcie, cpu = hw["pcie"], hw["cpu"]
        avoid = hw.get("transfer_avoidance")
        avoid_cell = f"{avoid:.2%}" if avoid is not None else "—"
        rows.append(
            "<tr>"
            f"<td>{_esc(_config_series(record))}</td>"
            f"<td>{badge}</td>"
            f"<td class='num'>{dram}</td>"
            f"<td class='num'>{cpu['utilization']:.1%}</td>"
            f"<td class='num'>{pcie['bytes'] / 1e6:,.2f}</td>"
            f"<td class='num'>{pcie['utilization']:.1%}</td>"
            f"<td class='num'>{avoid_cell}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>configuration</th><th>dominant bound</th>"
        "<th class='num'>GPU dram util</th><th class='num'>CPU util</th>"
        "<th class='num'>PCIe MB</th><th class='num'>PCIe util</th>"
        "<th class='num'>transfer avoidance</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _hw_section(records: list[dict], series_slots: _SlotMap) -> str:
    hw_recs = _hw_records(records)
    if not hw_recs:
        return (
            "<p class='muted'>No hardware data — these records predate "
            "the hw block (schema repro.obs.ledger/2). Re-profile under "
            "the current code to populate this page.</p>"
        )
    return (
        f"<h3>Roofline (all kernels, latest run per configuration)</h3>"
        f"{_hw_roofline_svg(hw_recs, series_slots)}"
        f"<h3>Utilization timeline</h3>{_hw_utilization_bars(hw_recs)}"
        f"<h3>Bound-ness and utilization</h3>"
        f"{_hw_boundness_table(hw_recs)}"
    )


# ----------------------------------------------------------------------
def _slo_section(slo: dict) -> str:
    """The SLO page: objective verdicts plus per-lane budget burn-down."""
    results = slo.get("results", [])
    rows = []
    for r in results:
        if r.status == "BREACH":
            badge = '<span class="slo-bad">BREACH</span>'
        elif r.status == "OK":
            badge = '<span class="slo-ok">OK</span>'
        else:
            badge = f'<span class="muted">{_esc(r.status)}</span>'
        burn = "∞" if r.burn_rate == float("inf") else f"{r.burn_rate:.2f}"
        remaining = r.budget_remaining
        rows.append(
            "<tr>"
            f"<td>{badge}</td>"
            f"<td>{_esc(r.name)}</td>"
            f"<td>{_esc(r.kind)}{'' if r.lane is None else f' (lane {r.lane})'}</td>"
            f"<td class='num'>{r.bad:,}/{r.events:,}</td>"
            f"<td class='num'>{r.allowed_fraction:.2%}</td>"
            f"<td class='num'>{burn}</td>"
            "<td><div class='budget'><div class='budget-fill' "
            f"style='width:{100.0 * remaining:.1f}%'></div></div></td>"
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>status</th><th>objective</th><th>kind</th>"
        "<th class='num'>bad/events</th><th class='num'>allowed</th>"
        "<th class='num'>burn rate</th><th>budget left</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    burn_blocks = []
    for series in slo.get("burn_down", []):
        points = series.get("points", [])
        if not points:
            continue
        bars = []
        for i, point in enumerate(points):
            remaining = point.get("budget_remaining", 0.0) or 0.0
            burn = point.get("burn_rate")
            tip = (
                f"drain {i + 1} ({point.get('run_id', '?')}): "
                f"{point.get('bad', 0)}/{point.get('events', 0)} bad, "
                f"burn {'∞' if burn is None else f'{burn:.2f}'}, "
                f"budget left {remaining:.0%}"
            )
            bars.append(
                '<div class="bar-row">'
                f'<div class="bar-label">drain {i + 1}</div>'
                '<div class="budget budget-wide" '
                f'data-tip="{_esc(tip)}">'
                f'<div class="budget-fill" style="width:{100.0 * remaining:.1f}%">'
                "</div></div>"
                f'<div class="bar-total">{remaining:.0%} left</div>'
                "</div>"
            )
        lane = series.get("lane")
        label = (
            f"{series['name']} — p{series['percentile']:g} "
            f"{series['kind']} ≤ {series['threshold_seconds'] * 1e3:g} ms"
            + (f", lane {lane}" if lane is not None else ", all lanes")
        )
        burn_blocks.append(
            f"<h3>{_esc(label)}</h3><div class='bars'>{''.join(bars)}</div>"
        )
    burn_html = "".join(burn_blocks) or (
        "<p class='muted'>No latency objectives with drain data to burn down."
        "</p>"
    )
    return (
        f"{table}<h3>Error-budget burn-down (cumulative over the window)</h3>"
        f"{burn_html}"
    )


# ----------------------------------------------------------------------
_CSS_TEMPLATE = """
:root {{ color-scheme: light dark; }}
body {{
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
}}
.viz-root {{
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-other: #898781;
{light_slots}
}}
@media (prefers-color-scheme: dark) {{
  .viz-root {{
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
{dark_slots}
  }}
}}
h1 {{ font-size: 22px; margin: 0 0 4px; }}
h2 {{ font-size: 16px; margin: 28px 0 10px; }}
h3 {{ font-size: 13px; margin: 18px 0 6px; color: var(--text-secondary); }}
.subtitle {{ color: var(--text-secondary); margin: 0 0 18px; font-size: 13px; }}
section {{
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin-bottom: 16px;
}}
.tiles {{ display: flex; gap: 12px; flex-wrap: wrap; }}
.tile {{ min-width: 130px; }}
.tile-value {{ font-size: 26px; }}
.tile-label {{ font-size: 12px; color: var(--text-secondary); }}
table {{ border-collapse: collapse; font-size: 13px; margin-top: 6px; }}
th, td {{ padding: 4px 12px 4px 0; text-align: left; }}
th {{ color: var(--muted); font-weight: 500; border-bottom: 1px solid var(--grid); }}
td.num, th.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
td.mono {{ font-family: ui-monospace, monospace; font-size: 12px; }}
.legend {{ display: flex; gap: 14px; flex-wrap: wrap; font-size: 12px;
  color: var(--text-secondary); margin: 4px 0 10px; }}
.key {{ display: inline-flex; align-items: center; gap: 5px; }}
.swatch {{ width: 10px; height: 10px; border-radius: 2px; display: inline-block; }}
.bar-row {{ display: flex; align-items: center; gap: 10px; margin: 6px 0; }}
.bar-label {{ flex: 0 0 300px; font-size: 12px; color: var(--text-secondary);
  white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }}
.bar {{ flex: 1 1 auto; display: flex; gap: 2px; height: 16px; }}
.seg {{ height: 100%; border-radius: 2px; min-width: 1px; }}
.seg:hover {{ filter: brightness(1.15); }}
.bar-total {{ flex: 0 0 110px; font-size: 12px; text-align: right;
  font-variant-numeric: tabular-nums; }}
svg {{ width: 100%; height: auto; display: block; }}
.svg-label {{ font-size: 11px; fill: var(--text-secondary); }}
.muted {{ color: var(--muted); font-size: 12px; }}
details summary {{ cursor: pointer; font-size: 13px; color: var(--text-secondary); }}
.slo-ok {{ color: var(--series-3, #1baf7a); font-weight: 600; }}
.slo-bad {{ color: var(--series-8, #e34948); font-weight: 600; }}
.budget {{ width: 140px; height: 10px; border-radius: 3px;
  background: var(--grid); overflow: hidden; }}
.budget-wide {{ flex: 1 1 auto; width: auto; height: 12px; }}
.budget-fill {{ height: 100%; background: var(--series-3, #1baf7a);
  border-radius: 3px; }}
#tip {{
  position: fixed; display: none; pointer-events: none; z-index: 10;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 5px 8px; font-size: 12px; max-width: 360px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.25);
}}
"""

_JS = """
(function () {
  var tip = document.getElementById('tip');
  function show(e) {
    var text = e.target.getAttribute && e.target.getAttribute('data-tip');
    if (!text) { tip.style.display = 'none'; return; }
    tip.textContent = text;
    tip.style.display = 'block';
    var x = Math.min(e.clientX + 12, window.innerWidth - tip.offsetWidth - 8);
    var y = Math.min(e.clientY + 12, window.innerHeight - tip.offsetHeight - 8);
    tip.style.left = x + 'px';
    tip.style.top = y + 'px';
  }
  document.addEventListener('mousemove', show);
  document.addEventListener('mouseout', function () { tip.style.display = 'none'; });
})();
"""


def html_report(records: list[dict], title: str = "repro run ledger",
                slo: dict | None = None) -> str:
    """Render ledger records as one self-contained HTML document.

    ``slo`` (optional) adds the SLO page: a dict with ``results`` (a
    list of :class:`repro.obs.slo.ObjectiveResult`), ``burn_down`` (from
    :func:`repro.obs.slo.lane_burn_down`) and ``window``.
    """
    if not records:
        raise ValueError("cannot render a report from an empty ledger")
    phase_slots = _SlotMap()
    series_slots = _SlotMap()
    # Pre-assign series slots in ledger order so colors are stable
    # between the trend chart and any future section.
    for record in records:
        series_slots.slot(_config_series(record))
    light_slots, dark_slots = _slot_css()
    css = _CSS_TEMPLATE.format(light_slots=light_slots, dark_slots=dark_slots)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    body = (
        f"<h1>{_esc(title)}</h1>"
        f'<p class="subtitle">{len(records)} run(s) · generated {stamp} · '
        "all times are deterministic modeled seconds</p>"
        f"<section><h2>Overview</h2>{_stat_tiles(records)}</section>"
        "<section><h2>Engine comparison (latest run per configuration)</h2>"
        f"{_comparison_tables(records)}</section>"
        "<section><h2>Phase breakdown</h2>"
        f"{_phase_bars(records, phase_slots)}</section>"
        "<section><h2>Hardware</h2>"
        f"{_hw_section(records, series_slots)}</section>"
        "<section><h2>Trend across the ledger</h2>"
        f"{_trend_svg(records, series_slots)}{_trend_table(records)}</section>"
    )
    if slo is not None:
        window = slo.get("window", 0)
        scope = f"last {window} drains" if window else "whole ledger"
        body += (
            f"<section><h2>Service-level objectives ({_esc(scope)})</h2>"
            f"{_slo_section(slo)}</section>"
        )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{css}</style></head>\n"
        f'<body class="viz-root">{body}<div id="tip"></div>'
        f"<script>{_JS}</script></body></html>\n"
    )


def write_html_report(records: list[dict], path, title: str = "repro run ledger",
                      slo: dict | None = None) -> str:
    doc = html_report(records, title=title, slo=slo)
    with open(path, "w") as fh:
        fh.write(doc)
    return doc

"""Comparative analysis of ledger records: exact per-phase delta attribution.

The paper argues by putting engines side by side on the same phase
breakdown (Tables II/III); this module does the same for any two ledger
records — two seeds of one engine, two engines on one graph, or the
same configuration before and after a code change.  Because modeled
seconds are deterministic, every delta is a real change in charged
work, so the analyzer can attribute it *exactly* down the span rollup:
"uncoarsening +18%, driven by ``refine.explore`` on levels 2-4".

Cohorts (lists of records — e.g. several seeds) are averaged node by
node with :func:`aggregate_records` and then compared the same way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "NodeDelta",
    "MetricDelta",
    "RunComparison",
    "compare_runs",
    "aggregate_records",
    "render_comparison",
]

_LEVEL_RE = re.compile(r"\Alevel (\d+)\Z")

#: Scalar metrics surfaced in the comparison beside the span tree.
_METRIC_KEYS = (
    ("quality", "cut"),
    ("quality", "imbalance"),
    ("counters", "transfer.h2d_bytes"),
    ("counters", "transfer.d2h_bytes"),
    ("counters", "kernel.launches"),
    ("gauges", "kernel.coalescing_efficiency"),
    ("gauges", "matching.conflict_rate{engine=gpu}"),
    ("gauges", "matching.conflict_rate{engine=cpu-threads}"),
    ("gauges", "memory.peak_bytes"),
)


@dataclass
class NodeDelta:
    """One span-rollup node's movement between two runs."""

    path: tuple[str, ...]  # names from the phase down, e.g. ("uncoarsening",)
    category: str
    base_seconds: float
    cur_seconds: float
    drivers: list["NodeDelta"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else "run"

    @property
    def delta(self) -> float:
        return self.cur_seconds - self.base_seconds

    @property
    def pct(self) -> float | None:
        """Relative change, or None when the baseline node had no time."""
        return (self.delta / self.base_seconds) if self.base_seconds else None


@dataclass
class MetricDelta:
    """One scalar metric's movement between two runs."""

    key: str
    base: float
    cur: float

    @property
    def delta(self) -> float:
        return self.cur - self.base

    @property
    def pct(self) -> float | None:
        return (self.delta / self.base) if self.base else None


@dataclass
class RunComparison:
    """The full diff of two ledger records (or averaged cohorts)."""

    base_label: str
    cur_label: str
    base_total: float
    cur_total: float
    phases: list[NodeDelta]
    metrics: list[MetricDelta]
    same_fingerprint: bool

    @property
    def total_delta(self) -> float:
        return self.cur_total - self.base_total

    @property
    def total_pct(self) -> float | None:
        return (self.total_delta / self.base_total) if self.base_total else None


# ----------------------------------------------------------------------
def _pair_children(base_node: dict | None, cur_node: dict | None):
    """Children of both nodes matched by (name, category); a side that
    lacks a child contributes a zero-second stand-in, so added/removed
    spans attribute as pure growth/shrinkage."""
    out: dict[tuple[str, str], tuple[dict | None, dict | None]] = {}
    for child in (base_node or {}).get("children", []):
        out[(child["name"], child["category"])] = (child, None)
    for child in (cur_node or {}).get("children", []):
        key = (child["name"], child["category"])
        base_child = out.get(key, (None, None))[0]
        out[key] = (base_child, child)
    return out


def _group_levels(pairs: dict) -> list[tuple[str, str, dict | None, dict | None]]:
    """Merge ``level N`` siblings whose deltas share a sign into range
    entries (``levels 2-4``), keeping everything else as-is."""
    singles: list[tuple[str, str, dict | None, dict | None]] = []
    levels: list[tuple[int, str, dict | None, dict | None]] = []
    for (name, category), (base_child, cur_child) in pairs.items():
        m = _LEVEL_RE.match(name)
        if m:
            levels.append((int(m.group(1)), category, base_child, cur_child))
        else:
            singles.append((name, category, base_child, cur_child))
    if len(levels) < 2:
        singles.extend(
            (f"level {num}", category, b, c) for num, category, b, c in levels
        )
        return singles

    def delta_sign(b, c):
        # Three-way sign: a flat level (exact zero — modeled time is
        # deterministic) must not fold into a regressed neighbour and
        # dilute the attribution range.
        d = ((c or {}).get("seconds", 0.0)) - ((b or {}).get("seconds", 0.0))
        return 0 if d == 0.0 else (1 if d > 0 else -1)

    levels.sort(key=lambda item: item[0])
    run: list[tuple[int, str, dict | None, dict | None]] = []
    grouped: list[tuple[str, str, dict | None, dict | None]] = []

    def flush():
        if not run:
            return
        if len(run) == 1:
            num, category, b, c = run[0]
            grouped.append((f"level {num}", category, b, c))
        else:
            lo, hi = run[0][0], run[-1][0]
            category = run[0][1]
            base_merge = _merge_nodes([b for _, _, b, _ in run], f"levels {lo}-{hi}")
            cur_merge = _merge_nodes([c for _, _, _, c in run], f"levels {lo}-{hi}")
            grouped.append((f"levels {lo}-{hi}", category, base_merge, cur_merge))
        run.clear()

    for item in levels:
        if run:
            prev = run[-1]
            contiguous = item[0] == prev[0] + 1
            same_sign = delta_sign(item[2], item[3]) == delta_sign(prev[2], prev[3])
            if not (contiguous and same_sign):
                flush()
        run.append(item)
    flush()
    return singles + grouped


def _merge_nodes(nodes: list[dict | None], name: str) -> dict | None:
    nodes = [n for n in nodes if n is not None]
    if not nodes:
        return None
    merged = {
        "name": name,
        "category": nodes[0]["category"],
        "seconds": 0.0,
        "count": 0,
        "children": [],
    }
    index: dict[tuple[str, str], dict] = {}
    for node in nodes:
        merged["seconds"] += node["seconds"]
        merged["count"] += node["count"]
        for child in node.get("children", []):
            key = (child["name"], child["category"])
            if key in index:
                _accumulate(index[key], child)
            else:
                copy = _copy_node(child)
                index[key] = copy
                merged["children"].append(copy)
    return merged


def _copy_node(node: dict) -> dict:
    return {
        "name": node["name"],
        "category": node["category"],
        "seconds": node["seconds"],
        "count": node["count"],
        "children": [_copy_node(c) for c in node.get("children", [])],
    }


def _accumulate(into: dict, other: dict) -> None:
    into["seconds"] += other["seconds"]
    into["count"] += other["count"]
    index = {(c["name"], c["category"]): c for c in into["children"]}
    for child in other.get("children", []):
        key = (child["name"], child["category"])
        if key in index:
            _accumulate(index[key], child)
        else:
            copy = _copy_node(child)
            index[key] = copy
            into["children"].append(copy)


def _attribute(
    base_node: dict | None,
    cur_node: dict | None,
    path: tuple[str, ...],
    parent_delta: float,
    max_depth: int = 4,
    max_drivers: int = 3,
    min_share: float = 0.25,
) -> list[NodeDelta]:
    """Children whose delta explains >= ``min_share`` of the parent's,
    sorted by |delta| desc, each recursively attributed in turn."""
    if max_depth <= 0 or not parent_delta:
        return []
    entries = []
    for name, category, base_child, cur_child in _group_levels(
        _pair_children(base_node, cur_node)
    ):
        base_s = (base_child or {}).get("seconds", 0.0)
        cur_s = (cur_child or {}).get("seconds", 0.0)
        delta = cur_s - base_s
        # Only children moving *with* the parent explain its delta.
        if delta == 0.0 or (delta > 0) != (parent_delta > 0):
            continue
        if abs(delta) < min_share * abs(parent_delta):
            continue
        node = NodeDelta(path + (name,), category, base_s, cur_s)
        node.drivers = _attribute(
            base_child, cur_child, node.path, delta,
            max_depth - 1, max_drivers, min_share,
        )
        entries.append(node)
    entries.sort(key=lambda n: abs(n.delta), reverse=True)
    return entries[:max_drivers]


def compare_runs(base: dict, cur: dict) -> RunComparison:
    """Diff two ledger records, attributing time deltas down the rollup."""
    base_root, cur_root = base["spans"], cur["spans"]
    base_total = base["run"]["modeled_seconds"]
    cur_total = cur["run"]["modeled_seconds"]

    phases: list[NodeDelta] = []
    for name, category, base_child, cur_child in _group_levels(
        _pair_children(base_root, cur_root)
    ):
        base_s = (base_child or {}).get("seconds", 0.0)
        cur_s = (cur_child or {}).get("seconds", 0.0)
        node = NodeDelta((name,), category, base_s, cur_s)
        node.drivers = _attribute(base_child, cur_child, node.path, node.delta)
        phases.append(node)
    phases.sort(key=lambda n: abs(n.delta), reverse=True)

    metrics: list[MetricDelta] = []
    for block, key in _METRIC_KEYS:
        base_v = _metric_value(base, block, key)
        cur_v = _metric_value(cur, block, key)
        if base_v is None or cur_v is None:
            continue
        metrics.append(MetricDelta(key, float(base_v), float(cur_v)))

    return RunComparison(
        base_label=_label(base),
        cur_label=_label(cur),
        base_total=base_total,
        cur_total=cur_total,
        phases=phases,
        metrics=metrics,
        same_fingerprint=base.get("fingerprint") == cur.get("fingerprint"),
    )


def _metric_value(record: dict, block: str, key: str):
    if block == "quality":
        return record.get("quality", {}).get(key)
    return record.get("metrics", {}).get(block, {}).get(key)


def _label(record: dict) -> str:
    cfg = record.get("config", {})
    parts = [str(cfg.get("engine", "?")), str(cfg.get("graph", "?"))]
    if cfg.get("k") is not None:
        parts.append(f"k={cfg['k']}")
    if cfg.get("seed") is not None:
        parts.append(f"seed={cfg['seed']}")
    runs = record.get("aggregated_runs")
    if runs:
        parts.append(f"mean of {runs}")
    return f"{record.get('run_id', '?')[:21]} ({' '.join(parts)})"


# ----------------------------------------------------------------------
def aggregate_records(records: list[dict]) -> dict:
    """Average a cohort of ledger records node by node.

    Phases, span-rollup seconds, metrics and quality become per-record
    means; the result quacks like a single record, so
    :func:`compare_runs` accepts it directly.
    """
    if not records:
        raise ValueError("cannot aggregate an empty cohort")
    if len(records) == 1:
        return records[0]
    n = len(records)
    merged_spans = _merge_nodes([r["spans"] for r in records], records[0]["spans"]["name"])
    _scale_node(merged_spans, 1.0 / n)

    phases: dict[str, dict] = {}
    for record in records:
        for name, entry in record.get("phases", {}).items():
            slot = phases.setdefault(name, {"seconds": 0.0, "share": 0.0, "spans": 0})
            slot["seconds"] += entry.get("seconds", 0.0) / n
            slot["share"] += entry.get("share", 0.0) / n
            slot["spans"] += entry.get("spans", 0)

    def mean_over(getter):
        values = [getter(r) for r in records]
        values = [v for v in values if isinstance(v, (int, float))]
        return sum(values) / len(values) if values else None

    metrics = {"counters": {}, "gauges": {}, "histograms": {}}
    for kind in ("counters", "gauges"):
        keys = {k for r in records for k in r.get("metrics", {}).get(kind, {})}
        for key in sorted(keys):
            metrics[kind][key] = mean_over(
                lambda r, kind=kind, key=key: r.get("metrics", {}).get(kind, {}).get(key)
            )

    first = records[0]
    return {
        "schema": first["schema"],
        "run_id": f"{first.get('fingerprint', 'cohort')}-x{n}",
        "fingerprint": first.get("fingerprint", ""),
        "config": first.get("config", {}),
        "aggregated_runs": n,
        "run": {
            **first.get("run", {}),
            "modeled_seconds": mean_over(
                lambda r: r.get("run", {}).get("modeled_seconds")
            ),
        },
        "quality": {
            "cut": mean_over(lambda r: r.get("quality", {}).get("cut")),
            "imbalance": mean_over(lambda r: r.get("quality", {}).get("imbalance")),
        },
        "phases": phases,
        "spans": merged_spans,
        "metrics": metrics,
    }


def _scale_node(node: dict, factor: float) -> None:
    node["seconds"] *= factor
    for child in node.get("children", []):
        _scale_node(child, factor)


# ----------------------------------------------------------------------
def _fmt_seconds(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def _fmt_delta(delta: float, pct: float | None) -> str:
    sign = "+" if delta >= 0 else "-"
    text = f"{sign}{abs(delta) * 1e3:.3f} ms"
    if pct is not None:
        text += f" ({pct:+.1%})"
    return text


def render_comparison(cmp: RunComparison, min_delta_seconds: float = 1e-9) -> str:
    """Human-readable per-phase delta attribution."""
    lines = [
        f"base    : {cmp.base_label}",
        f"current : {cmp.cur_label}",
    ]
    if not cmp.same_fingerprint:
        lines.append("note    : different config fingerprints "
                     "(engine/graph/k/seed/options differ)")
    lines.append(
        f"total   : {_fmt_seconds(cmp.base_total)} -> {_fmt_seconds(cmp.cur_total)}"
        f"  {_fmt_delta(cmp.total_delta, cmp.total_pct)}"
    )
    moved = [p for p in cmp.phases if abs(p.delta) >= min_delta_seconds]
    if not moved:
        lines.append("phases  : identical (no phase moved)")
    for phase in moved:
        lines.append(
            f"  {phase.name:<22s} {_fmt_seconds(phase.base_seconds)} -> "
            f"{_fmt_seconds(phase.cur_seconds)}  {_fmt_delta(phase.delta, phase.pct)}"
        )
        lines.extend(_render_drivers(phase.drivers, indent=2))
    changed = [m for m in cmp.metrics if m.delta]
    if changed:
        lines.append("metrics :")
        for m in changed:
            pct = f" ({m.pct:+.1%})" if m.pct is not None else ""
            lines.append(f"  {m.key:<42s} {m.base:g} -> {m.cur:g}{pct}")
    return "\n".join(lines)


def _render_drivers(drivers: list[NodeDelta], indent: int) -> list[str]:
    lines = []
    for driver in drivers:
        pad = " " * (indent + 2)
        lines.append(
            f"{pad}<- {driver.name} [{driver.category}] "
            f"{_fmt_delta(driver.delta, driver.pct)}"
        )
        lines.extend(_render_drivers(driver.drivers, indent + 2))
    return lines

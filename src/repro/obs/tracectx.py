"""Deterministic trace-context propagation for request-scoped spans.

A *trace* is the causal story of one unit of work — typically a
:class:`~repro.service.PartitionRequest` travelling through the service:
lane queueing, worker dispatch, the engine run it paid for, every kernel
and transfer span underneath, and any retries along the way.  All of
those spans share one ``trace_id``; parent/child edges are ``span_id`` /
``parent_id`` pairs; cross-request causality that is *not* parentage
(a batching follower amortizing a leader's CSR transfer) is a ``link``.

Everything here is deterministic: trace ids are content digests of the
request's config fingerprint plus its position in the drain — never a
wall clock, never a random number — so re-running a workload reproduces
the identical ids and the ledger/diff machinery can join records across
runs.

Propagation uses a module-level context stack (this codebase's
concurrency is a discrete-event simulation on one thread, so a plain
stack is exact, not approximate).  A :class:`~repro.obs.spans.Profiler`
constructed while a context is active *adopts* it: the profiler's root
span joins the active trace as a child of the active span.  That is how
an engine run started by the service lands inside the request's trace,
and how a nested engine (gp-metis' CPU fallback running mt-metis) lands
inside the outer engine's trace.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "TraceContext",
    "current_trace_context",
    "push_trace_context",
    "pop_trace_context",
    "use_trace_context",
    "trace_digest",
    "request_trace_id",
]


def trace_digest(payload, length: int = 16) -> str:
    """Short hex digest of a JSON-able payload (dict keys sorted)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


def request_trace_id(fingerprint: str, drain: int, seq: int) -> str:
    """The deterministic trace id of one service ticket.

    Derived from the request's config fingerprint plus its drain number
    and submission sequence — the same request submitted twice gets two
    traces, but re-running the identical workload reproduces identical
    ids whatever the worker-pool shape.
    """
    return trace_digest({"fingerprint": fingerprint, "drain": drain, "seq": seq})


@dataclass(frozen=True)
class TraceContext:
    """The (trace, active span) pair a new profiler should join."""

    trace_id: str
    span_id: str


# One stack per process: the simulation executes requests sequentially
# in deterministic order, so the active context is always well defined.
_STACK: list[tuple[int, TraceContext]] = []
_TOKENS = itertools.count(1)


def current_trace_context() -> TraceContext | None:
    """The innermost active context, or ``None`` outside any trace."""
    return _STACK[-1][1] if _STACK else None


def push_trace_context(ctx: TraceContext) -> int:
    """Activate ``ctx``; returns a token for :func:`pop_trace_context`."""
    if not isinstance(ctx, TraceContext):
        raise TypeError(f"expected TraceContext, got {type(ctx).__name__}")
    token = next(_TOKENS)
    _STACK.append((token, ctx))
    return token


def pop_trace_context(token: int) -> None:
    """Deactivate the context pushed under ``token``.

    Also drops anything pushed above it and not yet popped, so an
    exception inside a traced region cannot leak contexts into the next
    request.  Unknown (already-popped) tokens are a no-op.
    """
    for i in range(len(_STACK) - 1, -1, -1):
        if _STACK[i][0] == token:
            del _STACK[i:]
            return


@contextmanager
def use_trace_context(ctx: TraceContext):
    """``with use_trace_context(ctx): ...`` — push/pop around a block."""
    token = push_trace_context(ctx)
    try:
        yield ctx
    finally:
        pop_trace_context(token)

"""Critical-path extraction and latency attribution for service requests.

A pure analysis layer: given the tickets of one
:meth:`~repro.service.PartitionService.drain` (or the ``requests``
section of a drain ledger record), explain *where each request's latency
went*.  Latency is bucketed the way the paper's Table II buckets runtime
— transfer / coarsening / initial partitioning / refinement — extended
with the service-side buckets the paper's single-run view cannot see:
queue wait, batch wait, dispatch overhead and retry backoff.

Two invariants the property tests pin down, for every request:

* the attribution buckets sum to the end-to-end latency (float-exactly,
  up to accumulation order);
* the critical path — queue-wait → dispatch → retry → engine phases laid
  end-to-end on the service timeline — spans exactly ``submitted_at`` to
  ``finished_at``, so its duration can never exceed the latency.

Batching followers get the leader's one-time CSR transfer refunded by
the scheduler; here that refund is taken out of the *transfer* bucket
(where the charge lives), so a follower's waterfall shows the thin
transfer slice it actually paid.
"""

from __future__ import annotations

__all__ = [
    "BUCKETS",
    "phase_bucket",
    "engine_phases",
    "ticket_attribution",
    "ticket_critical_path",
    "request_entry",
    "attribution_totals",
    "render_waterfall",
    "requests_chrome_trace",
]

#: Latency buckets, in waterfall order.  ``queue`` is lane wait (minus
#: any batch overlap), ``batch_wait`` the slice of queue wait spent
#: behind the request's own batch leader, ``other`` whatever engine time
#: falls outside the recognized phases (e.g. baseline ``assign``).
BUCKETS = (
    "queue",
    "batch_wait",
    "dispatch",
    "retry",
    "transfer",
    "coarsen",
    "initpart",
    "refine",
    "other",
)


def phase_bucket(phase: str) -> str:
    """Map an engine phase name onto an attribution bucket.

    Handles both naming families: gp-metis' device-qualified phases
    (``coarsening-gpu``, ``uncoarsening-cpu``) and the CPU engines'
    plain ``coarsening`` / ``initpart`` / ``uncoarsening``.  The order
    matters: ``uncoarsening`` contains the substring ``coarsen``.
    """
    p = phase.lower()
    if "transfer" in p:
        return "transfer"
    if "uncoarsen" in p or "refine" in p:
        return "refine"
    if "coarsen" in p:
        return "coarsen"
    if "initpart" in p or "initial" in p:
        return "initpart"
    return "other"


def engine_phases(result) -> list[tuple[str, float]]:
    """Ordered (phase, seconds) pairs of a result's engine run."""
    profiler = getattr(result, "profiler", None)
    if profiler is not None:
        return [
            (span.name, span.duration)
            for span in profiler.root.children
            if span.category == "phase" and span.closed
        ]
    # No profiler attached: fall back to the clock's phase totals.
    return list(result.clock.seconds_by_phase().items())


def _phase_rows(result) -> list[tuple[str, float, float]]:
    """Ordered (phase, seconds, retry_seconds) rows of an engine run.

    ``retry_seconds`` is the slice of the phase spent inside
    fault-injected retry loops — failed attempts plus backoff, read off
    the ``retry``-category spans the fault layer emits — so attribution
    can charge it to the ``retry`` bucket instead of the phase's own.
    """
    profiler = getattr(result, "profiler", None)
    if profiler is None:
        return [
            (name, seconds, 0.0)
            for name, seconds in result.clock.seconds_by_phase().items()
        ]
    rows = []
    for span in profiler.root.children:
        if span.category != "phase" or not span.closed:
            continue
        retry_s = float(
            sum(s.duration for s in span.find_category("retry"))
        )
        rows.append((span.name, span.duration, min(retry_s, span.duration)))
    return rows


def _amortized_phases(ticket) -> list[tuple[str, str, float, float]]:
    """(phase, bucket, seconds, retry_seconds) with the batch refund
    taken out of the transfer slices — the engine time this ticket
    actually paid."""
    refund = ticket.amortized_seconds
    out = []
    for name, seconds, retry_s in _phase_rows(ticket.result):
        bucket = phase_bucket(name)
        if bucket == "transfer" and refund > 0:
            taken = min(refund, seconds)
            seconds -= taken
            refund -= taken
        out.append((name, bucket, seconds, min(retry_s, seconds)))
    return out


def ticket_attribution(ticket, *, dispatch_seconds: float,
                       batch_wait: float = 0.0) -> dict:
    """Bucket one ticket's latency; values sum to ``ticket.latency``."""
    att = dict.fromkeys(BUCKETS, 0.0)
    att["queue"] = ticket.queue_wait - batch_wait
    att["batch_wait"] = batch_wait
    att["dispatch"] = dispatch_seconds
    att["retry"] = ticket.retry_seconds
    if ticket.result is not None and ticket.cache != "hit":
        engine_total = ticket.result.modeled_seconds
        accounted = 0.0
        for _name, bucket, seconds, retry_s in _amortized_phases(ticket):
            att[bucket] += seconds - retry_s
            att["retry"] += retry_s
            accounted += seconds
        # Engine time outside any labelled phase (setup between phases).
        # When the phases cover the whole run the subtraction can land an
        # ulp below zero, which the monotone counters downstream reject.
        residual = (engine_total - ticket.amortized_seconds) - accounted
        att["other"] += residual if abs(residual) > 1e-15 else 0.0
    return att


def ticket_critical_path(ticket, *, dispatch_seconds: float) -> list[dict]:
    """The request's critical path as ordered timeline segments.

    Each segment is ``{"name", "bucket", "start", "end"}`` in service
    seconds; segments tile ``[submitted_at, finished_at]`` exactly, so
    the path's duration equals the latency.
    """
    segments: list[dict] = []

    def seg(name: str, bucket: str, start: float, end: float) -> float:
        segments.append({
            "name": name, "bucket": bucket, "start": start, "end": end,
        })
        return end

    cursor = ticket.submitted_at
    if ticket.started_at > cursor:
        cursor = seg("queue-wait", "queue", cursor, ticket.started_at)
    cursor = seg("dispatch", "dispatch", cursor, cursor + dispatch_seconds)
    if ticket.retry_seconds > 0:
        cursor = seg(
            "retry-backoff", "retry", cursor, cursor + ticket.retry_seconds
        )
    if ticket.result is not None and ticket.cache != "hit":
        engine_total = ticket.result.modeled_seconds
        accounted = 0.0
        for name, bucket, seconds, retry_s in _amortized_phases(ticket):
            if seconds <= 0:
                continue
            # Injected-retry time leads its phase as its own segment so
            # the waterfall shows the fault cost where attribution puts it.
            if retry_s > 0:
                cursor = seg(f"{name} retry", "retry", cursor, cursor + retry_s)
            if seconds - retry_s > 0:
                cursor = seg(name, bucket, cursor, cursor + (seconds - retry_s))
            accounted += seconds
        tail = (engine_total - ticket.amortized_seconds) - accounted
        if tail > 0:
            cursor = seg("engine-other", "other", cursor, cursor + tail)
    return segments


def request_entry(ticket, *, dispatch_seconds: float,
                  batch_wait: float = 0.0, links=()) -> dict:
    """One JSON-ready per-request entry for the drain's ledger record."""
    att = ticket_attribution(
        ticket, dispatch_seconds=dispatch_seconds, batch_wait=batch_wait
    )
    return {
        "trace_id": ticket.trace_id,
        "span_id": f"{ticket.trace_id}:req",
        "run_span_id": f"{ticket.trace_id}:run",
        "fingerprint": ticket.fingerprint,
        "engine": ticket.engine,
        "graph": ticket.request.graph.name,
        "k": ticket.request.k,
        "lane": ticket.lane,
        "seq": ticket.seq,
        "status": ticket.status,
        "cache": ticket.cache,
        "worker": ticket.worker,
        "gpu_slot": ticket.gpu_slot,
        "batch_id": ticket.batch_id,
        "batch_leader": ticket.batch_leader,
        "amortized_seconds": ticket.amortized_seconds,
        "retries": ticket.retries,
        "submitted_at": ticket.submitted_at,
        "started_at": ticket.started_at,
        "finished_at": ticket.finished_at,
        "queue_wait": ticket.queue_wait,
        "service_seconds": ticket.service_seconds,
        "latency": ticket.latency,
        "links": [dict(link) for link in links],
        "attribution": att,
        "critical_path": ticket_critical_path(
            ticket, dispatch_seconds=dispatch_seconds
        ),
    }


def attribution_totals(entries) -> dict:
    """Sum the attribution buckets across request entries."""
    totals = dict.fromkeys(BUCKETS, 0.0)
    for entry in entries:
        for bucket, seconds in entry["attribution"].items():
            totals[bucket] = totals.get(bucket, 0.0) + seconds
    return totals


# ----------------------------------------------------------------------
def render_waterfall(entry: dict, *, width: int = 48) -> str:
    """ASCII waterfall of one request entry (ledger ``requests`` row)."""
    t0 = entry["submitted_at"]
    t1 = entry["finished_at"]
    span = max(t1 - t0, 1e-12)
    lines = [
        f"request {entry['fingerprint']}  trace {entry['trace_id']}",
        f"  {entry['engine']} {entry['graph']} k={entry['k']}"
        f"  lane={entry['lane']} seq={entry['seq']}"
        f"  status={entry['status']} cache={entry['cache']}"
        + (
            f"  batch={entry['batch_id']}"
            f"{' (leader)' if entry['batch_leader'] else ''}"
            if entry["batch_id"] is not None else ""
        ),
        f"  latency {entry['latency'] * 1e3:.3f} ms"
        f"  (queue {entry['queue_wait'] * 1e3:.3f} ms"
        f" + service {entry['service_seconds'] * 1e3:.3f} ms)"
        + (
            f"  amortized {entry['amortized_seconds'] * 1e3:.3f} ms"
            if entry["amortized_seconds"] else ""
        ),
    ]
    for link in entry.get("links", ()):
        lines.append(
            f"  link -> trace {link.get('trace_id')}"
            f" span {link.get('span_id')} (batch leader)"
        )
    lines.append("")
    for seg in entry["critical_path"]:
        dur = seg["end"] - seg["start"]
        lo = int(round((seg["start"] - t0) / span * width))
        hi = int(round((seg["end"] - t0) / span * width))
        hi = max(hi, lo + 1) if dur > 0 else lo
        bar = "." * lo + "=" * (hi - lo) + "." * (width - hi)
        lines.append(
            f"  {seg['name']:<18.18s} {seg['bucket']:<10s}"
            f" {dur * 1e3:>10.4f} ms  |{bar}|"
        )
    lines.append("")
    lines.append("  attribution (sums to latency):")
    att = entry["attribution"]
    latency = max(entry["latency"], 1e-12)
    for bucket in BUCKETS:
        seconds = att.get(bucket, 0.0)
        if seconds <= 0:
            continue
        lines.append(
            f"    {bucket:<10s} {seconds * 1e3:>10.4f} ms"
            f"  {100.0 * seconds / latency:>5.1f}%"
        )
    return "\n".join(lines)


def requests_chrome_trace(record: dict) -> dict:
    """A drain ledger record's ``requests`` as a Chrome trace document.

    One thread lane per worker (cache hits land on a synthetic
    ``cache-hits`` lane), one "X" event per critical-path segment plus
    one enclosing request event, and flow ("s"/"f") arrows from each
    batch leader's request to its followers.
    """
    from .export import CHROME_TRACE_SCHEMA, _us

    entries = record.get("requests") or []
    if not entries:
        raise ValueError("ledger record carries no requests section")
    hit_tid = max(
        (e["worker"] for e in entries if e.get("worker") is not None), default=-1
    ) + 1
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": f"repro:service drain ({record.get('run_id', '?')})"},
    }]
    tids = set()
    by_run_span: dict[str, dict] = {}
    for entry in entries:
        tid = entry["worker"] if entry.get("worker") is not None else hit_tid
        tids.add(tid)
        by_run_span[entry["run_span_id"]] = {"entry": entry, "tid": tid}
        args = {
            "trace_id": entry["trace_id"],
            "span_id": entry["span_id"],
            "fingerprint": entry["fingerprint"],
            "lane": entry["lane"],
            "status": entry["status"],
            "cache": entry["cache"],
        }
        if entry.get("links"):
            args["links"] = [dict(link) for link in entry["links"]]
        events.append({
            "name": f"{entry['engine']} {entry['graph']} k={entry['k']}",
            "cat": "request", "ph": "X",
            "ts": _us(entry["submitted_at"]),
            "dur": _us(entry["finished_at"] - entry["submitted_at"]),
            "pid": 0, "tid": tid, "args": args,
        })
        for seg in entry["critical_path"]:
            events.append({
                "name": seg["name"], "cat": seg["bucket"], "ph": "X",
                "ts": _us(seg["start"]),
                "dur": _us(seg["end"] - seg["start"]),
                "pid": 0, "tid": tid,
                "args": {"trace_id": entry["trace_id"]},
            })
    for tid in sorted(tids):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {
                "name": "cache-hits" if tid == hit_tid else f"worker {tid}"
            },
        })
    flow_id = 0
    for entry in entries:
        for link in entry.get("links", ()):
            target = by_run_span.get(link.get("span_id"))
            if target is None:
                continue
            flow_id += 1
            leader = target["entry"]
            events.append({
                "name": "batch", "cat": "flow", "ph": "s", "id": flow_id,
                "ts": _us(leader["started_at"]), "pid": 0,
                "tid": target["tid"],
            })
            follower_tid = (
                entry["worker"] if entry.get("worker") is not None else hit_tid
            )
            events.append({
                "name": "batch", "cat": "flow", "ph": "f", "bp": "e",
                "id": flow_id, "ts": _us(entry["started_at"]), "pid": 0,
                "tid": follower_tid,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": CHROME_TRACE_SCHEMA,
            "run_id": record.get("run_id"),
            "engine": "service",
            "requests": len(entries),
        },
    }

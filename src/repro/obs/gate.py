"""Generalized regression gate over ledger records.

The PR-2 perf gate (``benchmarks/baseline.py``) hard-codes one check —
per-phase modeled seconds plus the cut, at one tolerance.  This module
generalizes it: tolerances for *any* gated quantity (per-phase seconds,
total, edge cut, imbalance, any scalar metric such as PCIe bytes or the
matching conflict rate) are declared in one schema-validated policy
file, evaluated between a committed baseline ledger and a freshly
collected (or separately recorded) current ledger, and any violation
makes the gate exit non-zero.

Policy file (schema ``repro.obs.gate-policy/1``)::

    {
      "schema": "repro.obs.gate-policy/1",
      "rules": [
        {"quantity": "total",      "tolerance": 0.10, "floor": 1e-6},
        {"quantity": "phase:*",    "tolerance": 0.10, "floor": 1e-6},
        {"quantity": "cut",        "tolerance": 0.05},
        {"quantity": "metric:transfer.h2d_bytes", "tolerance": 0.10},
        {"quantity": "metric:kernel.coalescing_efficiency",
         "tolerance": 0.05, "direction": "decrease"}
      ]
    }

``quantity`` targets: ``total``, ``cut``, ``imbalance``,
``phase:<name>`` (``phase:*`` expands over the baseline's phases), and
``metric:<key>`` (a counter or gauge key, labels included; append
``#p50``/``#p95``/``#p99``/``#mean``/``#max``/``#count`` to read a
histogram summary stat).  A rule whose quantity is missing or
non-numeric on one side is WARN-skipped, never a crash; missing on both
sides is a silent non-match (service rules against engine records).
``direction`` declares which way is *worse*: ``increase`` (default),
``decrease`` (e.g. coalescing efficiency), or ``both``.  A violation
needs both the relative ``tolerance`` and the absolute ``floor``
exceeded, so microscopic quantities cannot fail the build.

A rule may carry ``"match": {"engine": "gp-metis"}`` (any config keys):
it then applies only to record pairs whose baseline ``config`` carries
those exact values, so per-engine expectations (the async-streams
overlap win, say) don't leak onto the CPU engines.

Baseline and current records are matched on (engine, graph, k, seed);
the config fingerprint additionally detects silent option drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .schema import GATE_POLICY_SCHEMA, validate_gate_policy

__all__ = [
    "GATE_POLICY_SCHEMA",
    "DEFAULT_POLICY",
    "Violation",
    "load_policy",
    "match_key",
    "resolve_quantity",
    "evaluate_gate",
    "render_gate",
    "collect_workload_records",
    "GATE_PAPER_SCALES",
]

#: The policy the gate falls back to when none is given: the PR-2
#: baseline semantics (phases + total + cut at 10 %), generalized.
DEFAULT_POLICY: dict = {
    "schema": GATE_POLICY_SCHEMA,
    "rules": [
        {"quantity": "total", "tolerance": 0.10, "floor": 1e-6},
        {"quantity": "phase:*", "tolerance": 0.10, "floor": 1e-6},
        {"quantity": "cut", "tolerance": 0.10},
    ],
}


@dataclass(frozen=True)
class Violation:
    """One gated quantity that moved past its declared tolerance."""

    run_label: str
    quantity: str
    direction: str
    baseline: float
    current: float
    tolerance: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")


def load_policy(path) -> dict:
    """Read and schema-validate a gate policy file."""
    with open(path) as fh:
        doc = json.load(fh)
    validate_gate_policy(doc)
    return doc


def match_key(record: dict) -> tuple:
    """The identity baseline/current records are joined on."""
    cfg = record.get("config", {})
    return (cfg.get("engine"), cfg.get("graph"), cfg.get("k"), cfg.get("seed"))


def _latest_by_key(records: list[dict]) -> dict[tuple, dict]:
    out: dict[tuple, dict] = {}
    for record in records:  # append order; last record wins
        out[match_key(record)] = record
    return out


def resolve_quantity(record: dict, quantity: str):
    """The record's value for one rule target (None when absent)."""
    if quantity == "total":
        return record.get("run", {}).get("modeled_seconds")
    if quantity == "cut":
        return record.get("quality", {}).get("cut")
    if quantity == "imbalance":
        return record.get("quality", {}).get("imbalance")
    if quantity.startswith("phase:"):
        entry = record.get("phases", {}).get(quantity[len("phase:"):])
        return None if entry is None else entry.get("seconds")
    if quantity.startswith("metric:"):
        key = quantity[len("metric:"):]
        stat = None
        if "#" in key:
            key, stat = key.rsplit("#", 1)
        metrics = record.get("metrics", {})
        if stat is None:
            for kind in ("counters", "gauges"):
                if key in metrics.get(kind, {}):
                    return metrics[kind][key]
        hist = metrics.get("histograms", {}).get(key)
        if isinstance(hist, dict):
            # Histogram summary stat (``metric:<key>#p95``); may be None
            # for an empty histogram — the evaluator warns and skips.
            return hist.get(stat if stat is not None else "mean")
        return None
    raise ValueError(f"unknown gate quantity {quantity!r}")


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _rule_matches(rule: dict, record: dict) -> bool:
    """Whether a rule's ``match`` filter accepts this record's config."""
    cfg = record.get("config", {})
    return all(cfg.get(k) == v for k, v in rule.get("match", {}).items())


def _expand_rule(rule: dict, baseline: dict) -> list[dict]:
    if rule["quantity"] == "phase:*":
        return [
            {**rule, "quantity": f"phase:{name}"}
            for name in sorted(baseline.get("phases", {}))
        ]
    return [rule]


def _violates(rule: dict, base_value: float, cur_value: float) -> str | None:
    """The offending direction, or None when within tolerance."""
    tolerance = float(rule["tolerance"])
    floor = float(rule.get("floor", 0.0))
    direction = rule.get("direction", "increase")
    if direction in ("increase", "both"):
        if cur_value > base_value * (1.0 + tolerance) and (
            cur_value - base_value
        ) > floor:
            return "increase"
    if direction in ("decrease", "both"):
        if cur_value < base_value * (1.0 - tolerance) and (
            base_value - cur_value
        ) > floor:
            return "decrease"
    return None


def evaluate_gate(
    policy: dict, baseline_records: list[dict], current_records: list[dict]
) -> tuple[list[Violation], int, list[str]]:
    """Apply the policy to every matched (baseline, current) record pair.

    Returns ``(violations, checks_performed, notes)``.  Baseline records
    with no current counterpart produce a note (the workload shrank —
    that deserves eyes, not a silent pass); quantities missing on either
    side are skipped, so new phases/metrics fail nothing until a
    baseline containing them is committed.
    """
    validate_gate_policy(policy)
    violations: list[Violation] = []
    notes: list[str] = []
    checks = 0
    current_by_key = _latest_by_key(current_records)
    for key, base_record in _latest_by_key(baseline_records).items():
        cur_record = current_by_key.get(key)
        label = "{}/{} k={} seed={}".format(*key)
        if cur_record is None:
            notes.append(f"{label}: no current run to compare (baseline unmatched)")
            continue
        if base_record.get("fingerprint") != cur_record.get("fingerprint"):
            notes.append(
                f"{label}: config fingerprint changed "
                f"({base_record.get('fingerprint')} -> "
                f"{cur_record.get('fingerprint')}); options drifted?"
            )
        for rule in policy["rules"]:
            if not _rule_matches(rule, base_record):
                continue
            for concrete in _expand_rule(rule, base_record):
                base_value = resolve_quantity(base_record, concrete["quantity"])
                cur_value = resolve_quantity(cur_record, concrete["quantity"])
                if not _numeric(base_value) or not _numeric(cur_value):
                    if base_value is None and cur_value is None:
                        # Rule does not apply to this record pair (e.g.
                        # a service.* rule against an engine record).
                        continue
                    # Present on one side but missing/None/non-numeric on
                    # the other (an empty histogram's p50, a null gauge):
                    # warn and skip instead of crashing the gate run.
                    sides = []
                    if not _numeric(base_value):
                        sides.append(f"baseline={base_value!r}")
                    if not _numeric(cur_value):
                        sides.append(f"current={cur_value!r}")
                    notes.append(
                        f"WARN {label} {concrete['quantity']}: metric missing "
                        f"or non-numeric ({', '.join(sides)}); rule skipped"
                    )
                    continue
                checks += 1
                direction = _violates(concrete, float(base_value), float(cur_value))
                if direction is not None:
                    violations.append(
                        Violation(
                            run_label=label,
                            quantity=concrete["quantity"],
                            direction=direction,
                            baseline=float(base_value),
                            current=float(cur_value),
                            tolerance=float(concrete["tolerance"]),
                        )
                    )
    return violations, checks, notes


def render_gate(
    violations: list[Violation], checks: int, notes: list[str]
) -> str:
    """The gate verdict as a printable report."""
    lines: list[str] = []
    for note in notes:
        lines.append(f"note: {note}")
    for v in violations:
        worse = "above" if v.direction == "increase" else "below"
        lines.append(
            f"REGRESSED {v.run_label} {v.quantity}: "
            f"{v.baseline:g} -> {v.current:g} ({v.ratio:.2f}x), "
            f"{worse} the {v.tolerance:.0%} tolerance"
        )
    if violations:
        lines.append(
            f"FAIL: {len(violations)} violation(s) in {checks} gated checks"
        )
    else:
        lines.append(f"PASS: {checks} gated checks within tolerance")
    return "\n".join(lines)


# ----------------------------------------------------------------------
#: The gate's paper-dataset sweep: gp-metis on all four Table I analogue
#: graphs at CI-sized scales.  These are the records the async-streams
#: rules (scoped ``metric:hw.pcie.exposed_seconds`` / ``total``) gate —
#: regressing the overlap win on any of them fails the build.
GATE_PAPER_SCALES: dict[str, float] = {
    "ldoor": 0.008,
    "delaunay": 0.012,
    "hugebubble": 0.0006,
    "usa_roads": 0.0005,
}


def collect_workload_records(config=None) -> list[dict]:
    """Freshly profile the standard gate workload into ledger records.

    Reuses the PR-2 :class:`~repro.bench.baseline.BaselineConfig`
    workload (the same graphs/methods the old gate snapshotted), but
    records full ledger records so every policy quantity is gateable.
    On top of that come one gp-metis run per Table I analogue dataset
    (``GATE_PAPER_SCALES``) — the workload the paper's end-to-end claim
    and the async-streams overlap win are asserted on — and one
    ``engine="service"`` record covering the concurrent partition
    service (a fixed mixed workload on a 4-worker pool), so
    ``metric:service.*`` rules gate throughput, latency percentiles and
    cache behaviour alongside the engine runs.
    """
    # Imported lazily: repro.bench pulls in repro.api (and with it every
    # engine), which itself imports repro.obs.
    from ..api import partition
    from ..bench.baseline import BaselineConfig
    from ..graphs.datasets import PAPER_DATASETS
    from .ledger import ledger_record

    config = config or BaselineConfig()
    graph = config.make_graph()
    records: list[dict] = []
    for method in config.methods:
        opts = dict(config.options.get(method, {}))
        result = partition(graph, config.k, method=method, seed=config.seed, **opts)
        profiler = result.profiler
        if profiler is None:
            raise RuntimeError(f"method {method!r} did not attach a profiler")
        records.append(ledger_record(profiler))
    for name, scale in GATE_PAPER_SCALES.items():
        ds_graph = PAPER_DATASETS[name].build(scale=scale, seed=config.seed)
        result = partition(
            ds_graph, config.k, method="gp-metis", seed=config.seed,
            gpu_threshold_min=2048,
        )
        if result.profiler is None:
            raise RuntimeError("gp-metis did not attach a profiler")
        records.append(ledger_record(result.profiler))
    records.append(_service_workload_record())
    return records


def _service_workload_record() -> dict:
    """One deterministic service drain as a gateable ledger record."""
    from ..service import PartitionService, ServiceConfig, WorkloadSpec, build_workload
    from .critical import request_entry
    from .ledger import ledger_record

    service = PartitionService(ServiceConfig(num_workers=4, gpu_slots=1))
    for request in build_workload(WorkloadSpec(requests=30, graph_n=400)):
        service.submit(request)
    tickets = service.drain()
    assert service.last_profiler is not None
    entries = [
        request_entry(
            t, dispatch_seconds=service.config.dispatch_seconds,
            batch_wait=t.batch_wait, links=t.links,
        )
        for t in tickets
    ]
    return ledger_record(
        service.last_profiler, sections={"requests": entries}
    )

"""Span-based observability: profiler, metrics, exporters, cross-run tools.

The paper's entire argument is a runtime breakdown (Tables II-III,
Fig. 5); this package is the layer that produces those breakdowns from
live runs.  A :class:`Profiler` attached to a run's
:class:`~repro.runtime.clock.SimClock` builds the span tree
(run -> phase -> level -> kernel/pass) over simulated time, every engine
reports the same metric set through :func:`profile_run` /
:func:`finish_run`, and exporters emit Chrome trace-event JSON
(Perfetto-loadable), a flat metrics JSON, and an ASCII tree.

On top of the single-run layer sit the *cross-run* tools: the
append-only JSONL run ledger (:mod:`repro.obs.ledger`), the comparative
analyzer with exact per-phase delta attribution
(:mod:`repro.obs.compare`), the policy-driven regression gate
(:mod:`repro.obs.gate`), the self-contained HTML report
(:mod:`repro.obs.report`), and the hardware-utilization layer
(:mod:`repro.obs.hw`): per-kernel rooflines, bound-ness attribution and
achieved-vs-peak utilization for every counted second.

See docs/OBSERVABILITY.md for the span model, exporter formats, and the
ledger/compare/gate/report workflow.
"""

from .compare import (
    MetricDelta,
    NodeDelta,
    RunComparison,
    aggregate_records,
    compare_runs,
    render_comparison,
)
from .critical import (
    BUCKETS,
    attribution_totals,
    phase_bucket,
    render_waterfall,
    request_entry,
    requests_chrome_trace,
    ticket_attribution,
    ticket_critical_path,
)
from .export import (
    CHROME_TRACE_SCHEMA,
    METRICS_SCHEMA,
    chrome_trace,
    metrics_json,
    render_tree,
    write_chrome_trace,
    write_metrics_json,
)
from .gate import (
    DEFAULT_POLICY,
    Violation,
    collect_workload_records,
    evaluate_gate,
    load_policy,
    render_gate,
)
from .hooks import finish_run, profile_run
from .hw import (
    BOUND_KINDS,
    HW_SCHEMA,
    KernelRoofline,
    check_transfer_consistency,
    gpu_section,
    hw_metrics,
    hw_section,
    kernel_rooflines,
    pcie_section,
    phase_timeline,
    render_kernel_table,
    render_roofline_chart,
    transfer_avoidance_ratio,
    transfer_span_bytes,
    validate_hw_section,
)
from .ledger import (
    append_record,
    config_fingerprint,
    ledger_record,
    options_hash,
    read_ledger,
    set_default_ledger,
    span_rollup,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key
from .report import html_report, write_html_report
from .schema import (
    GATE_POLICY_SCHEMA,
    LEDGER_SCHEMA,
    SLO_POLICY_SCHEMA,
    SchemaError,
    validate_chrome_trace,
    validate_gate_policy,
    validate_ledger_record,
    validate_metrics,
    validate_slo_policy,
)
from .slo import (
    ObjectiveResult,
    evaluate_slo,
    lane_burn_down,
    load_slo_policy,
    render_slo,
    slo_ok,
    window_requests,
)
from .spans import Profiler, Span, clock_span
from .tracectx import (
    TraceContext,
    current_trace_context,
    request_trace_id,
    use_trace_context,
)

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "LEDGER_SCHEMA",
    "GATE_POLICY_SCHEMA",
    "Span",
    "Profiler",
    "clock_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "profile_run",
    "finish_run",
    "chrome_trace",
    "metrics_json",
    "render_tree",
    "write_chrome_trace",
    "write_metrics_json",
    "SchemaError",
    "validate_chrome_trace",
    "validate_metrics",
    "validate_ledger_record",
    "validate_gate_policy",
    # ledger
    "ledger_record",
    "append_record",
    "read_ledger",
    "set_default_ledger",
    "span_rollup",
    "options_hash",
    "config_fingerprint",
    # compare
    "NodeDelta",
    "MetricDelta",
    "RunComparison",
    "compare_runs",
    "aggregate_records",
    "render_comparison",
    # gate
    "DEFAULT_POLICY",
    "Violation",
    "load_policy",
    "evaluate_gate",
    "render_gate",
    "collect_workload_records",
    # report
    "html_report",
    "write_html_report",
    # tracectx
    "TraceContext",
    "current_trace_context",
    "use_trace_context",
    "request_trace_id",
    # critical path / attribution
    "BUCKETS",
    "phase_bucket",
    "ticket_attribution",
    "ticket_critical_path",
    "request_entry",
    "attribution_totals",
    "render_waterfall",
    "requests_chrome_trace",
    # hardware utilization / roofline
    "HW_SCHEMA",
    "BOUND_KINDS",
    "KernelRoofline",
    "kernel_rooflines",
    "gpu_section",
    "pcie_section",
    "phase_timeline",
    "transfer_avoidance_ratio",
    "transfer_span_bytes",
    "hw_section",
    "hw_metrics",
    "check_transfer_consistency",
    "render_kernel_table",
    "render_roofline_chart",
    "validate_hw_section",
    # slo
    "SLO_POLICY_SCHEMA",
    "ObjectiveResult",
    "load_slo_policy",
    "evaluate_slo",
    "slo_ok",
    "render_slo",
    "lane_burn_down",
    "window_requests",
    "validate_slo_policy",
]

"""Span-based observability: hierarchical profiler, metrics, exporters.

The paper's entire argument is a runtime breakdown (Tables II-III,
Fig. 5); this package is the layer that produces those breakdowns from
live runs.  A :class:`Profiler` attached to a run's
:class:`~repro.runtime.clock.SimClock` builds the span tree
(run -> phase -> level -> kernel/pass) over simulated time, every engine
reports the same metric set through :func:`profile_run` /
:func:`finish_run`, and exporters emit Chrome trace-event JSON
(Perfetto-loadable), a flat metrics JSON, and an ASCII tree.

See docs/OBSERVABILITY.md for the span model, exporter formats, and the
perf-baseline workflow (``benchmarks/baseline.py``).
"""

from .export import (
    CHROME_TRACE_SCHEMA,
    METRICS_SCHEMA,
    chrome_trace,
    metrics_json,
    render_tree,
    write_chrome_trace,
    write_metrics_json,
)
from .hooks import finish_run, profile_run
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key
from .schema import SchemaError, validate_chrome_trace, validate_metrics
from .spans import Profiler, Span, clock_span

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "Span",
    "Profiler",
    "clock_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "profile_run",
    "finish_run",
    "chrome_trace",
    "metrics_json",
    "render_tree",
    "write_chrome_trace",
    "write_metrics_json",
    "SchemaError",
    "validate_chrome_trace",
    "validate_metrics",
]

"""Non-multilevel baselines (pre-multilevel techniques + sanity anchors)."""

from .naive import BlockPartitioner, RandomPartitioner
from .options import BlockOptions, RandomOptions, SpectralOptions
from .spectral import SpectralPartitioner, fiedler_vector, spectral_bisect

__all__ = [
    "SpectralPartitioner",
    "SpectralOptions",
    "fiedler_vector",
    "spectral_bisect",
    "RandomPartitioner",
    "RandomOptions",
    "BlockPartitioner",
    "BlockOptions",
]

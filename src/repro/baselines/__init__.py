"""Non-multilevel baselines (pre-multilevel techniques + sanity anchors)."""

from .naive import BlockPartitioner, RandomPartitioner
from .spectral import SpectralPartitioner, fiedler_vector, spectral_bisect

__all__ = [
    "SpectralPartitioner",
    "fiedler_vector",
    "spectral_bisect",
    "RandomPartitioner",
    "BlockPartitioner",
]

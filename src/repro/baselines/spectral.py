"""Spectral recursive bisection — the pre-multilevel state of the art.

The paper's Sec. I/II cite spectral nested dissection (Pothen et al.)
among the heuristics that multilevel methods displaced: "Multilevel
techniques for graph partitioning show great improvements in the quality
of partitions and partitioning speed as compared to other techniques
[4, 5]."  This baseline lets the benchmark suite demonstrate that claim.

Bisection: split at the weighted median of the Fiedler vector (the
eigenvector of the second-smallest eigenvalue of the graph Laplacian),
computed with scipy's Lanczos (dense fallback for tiny subgraphs).
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import InvalidParameterError, PartitioningError
from ..faults import attach_injector
from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut, imbalance
from ..obs.hooks import finish_run, profile_run
from ..result import PartitionResult
from ..runtime.clock import SimClock
from ..runtime.machine import PAPER_MACHINE, MachineSpec
from ..runtime.trace import Trace
from ..serial.kway import rebalance_pass
from .options import SpectralOptions

__all__ = ["fiedler_vector", "spectral_bisect", "SpectralPartitioner"]

_DENSE_CUTOFF = 64  # below this, dense eigendecomposition is cheaper/safer


def fiedler_vector(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """The eigenvector of the second-smallest Laplacian eigenvalue.

    Disconnected graphs have a multiplicity->1 zero eigenvalue; the
    returned vector then separates components, which is still a valid
    (indeed ideal) bisection direction.
    """
    n = graph.num_vertices
    if n < 2:
        raise PartitioningError("Fiedler vector needs at least 2 vertices")
    a = graph.to_scipy()
    from scipy.sparse import diags

    lap = diags(np.asarray(a.sum(axis=1)).ravel()) - a
    if n <= _DENSE_CUTOFF:
        w, v = np.linalg.eigh(lap.toarray())
        return v[:, np.argsort(w)[1]]
    from scipy.sparse.linalg import eigsh

    rng = np.random.default_rng(seed)
    try:
        w, v = eigsh(
            lap.asfptype(), k=2, sigma=-1e-6, which="LM",
            v0=rng.random(n),
        )
    except Exception:
        # Shift-invert can fail on singular factorizations; fall back to
        # the (slower) smallest-magnitude Lanczos.
        w, v = eigsh(lap.asfptype(), k=2, which="SM", v0=rng.random(n))
    return v[:, np.argsort(w)[1]]


def spectral_bisect(
    graph: CSRGraph, fraction: float = 0.5, seed: int = 0
) -> np.ndarray:
    """0/1 labels: vertices above the weighted ``fraction`` quantile of
    the Fiedler vector form side 1."""
    if graph.num_vertices == 0:
        return np.empty(0, dtype=np.int64)
    if graph.num_vertices == 1:
        return np.zeros(1, dtype=np.int64)
    f = fiedler_vector(graph, seed=seed)
    order = np.argsort(f, kind="stable")
    cum = np.cumsum(graph.vwgt[order])
    target = (1.0 - fraction) * graph.total_vertex_weight
    split = int(np.searchsorted(cum, target, side="left")) + 1
    labels = np.zeros(graph.num_vertices, dtype=np.int64)
    labels[order[min(split, graph.num_vertices - 1):]] = 1
    if labels.min() == labels.max():  # degenerate quantile
        labels[order[graph.num_vertices // 2:]] = 1
    return labels


class SpectralPartitioner:
    """Recursive spectral bisection to k parts (no multilevel, no FM).

    Cost model: each bisection runs Lanczos — ~``iterations`` sparse
    mat-vecs over the subgraph, at CPU edge-op rates.  This is what makes
    spectral slow next to multilevel (Sec. II's claim): the whole graph
    is swept ~60+ times per split instead of once per level.
    """

    name = "spectral"
    options_class = SpectralOptions

    def __init__(
        self, options: SpectralOptions | None = None,
        machine: MachineSpec | None = None, **legacy,
    ) -> None:
        if legacy:
            if options is not None:
                raise InvalidParameterError(
                    "pass either an options dataclass or bare kwargs, not both"
                )
            try:
                options = SpectralOptions(**legacy)
            except TypeError as exc:
                valid = ", ".join(SpectralOptions.__dataclass_fields__)
                raise InvalidParameterError(
                    f"bad options for 'spectral': {exc}; valid options: {valid}"
                ) from None
        if options is not None and not isinstance(options, SpectralOptions):
            raise InvalidParameterError(
                f"'spectral' takes a SpectralOptions options dataclass, got "
                f"{type(options).__name__}; the legacy positional "
                f"(ubfactor, seed) constructor is gone — pass keyword "
                f"arguments (e.g. SpectralPartitioner(ubfactor=..., "
                f"seed=...)) or an options dataclass"
            )
        if machine is not None and not isinstance(machine, MachineSpec):
            raise InvalidParameterError(
                f"machine must be a MachineSpec, got {type(machine).__name__}"
            )
        self.options = options or SpectralOptions()
        self.machine = machine or PAPER_MACHINE

    # Legacy attribute access (pre-dataclass callers read these).
    @property
    def ubfactor(self) -> float:
        return self.options.ubfactor

    @property
    def seed(self) -> int:
        return self.options.seed

    @property
    def lanczos_iterations(self) -> int:
        return self.options.lanczos_iterations

    def partition(self, graph: CSRGraph, k: int) -> PartitionResult:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        clock = SimClock()
        injector = attach_injector(
            clock, self.options.fault_plan, recover=self.options.fault_recovery
        )
        trace = Trace()
        profiler = profile_run(
            clock, engine=self.name, graph=graph, k=k, options=self.options,
        )
        clock.set_phase("spectral")
        t0 = time.perf_counter()
        n = graph.num_vertices
        part = np.zeros(n, dtype=np.int64)

        stack = [(graph, np.arange(n, dtype=np.int64), k, 0)]
        while stack:
            g, vmap, kk, base = stack.pop()
            if kk == 1 or g.num_vertices == 0:
                part[vmap] = base
                continue
            if g.num_vertices < kk:
                part[vmap] = base + (np.arange(g.num_vertices) % kk)
                continue
            k1 = (kk + 1) // 2
            labels = spectral_bisect(g, fraction=k1 / kk, seed=self.seed)
            clock.charge(
                "compute",
                self.machine.cpu.edge_seconds(
                    self.lanczos_iterations * g.num_directed_edges,
                    avg_degree=2 * g.num_edges / max(1, g.num_vertices),
                ),
                count=float(self.lanczos_iterations * g.num_directed_edges),
                detail=f"lanczos n={g.num_vertices}",
            )
            side1 = np.where(labels == 1)[0]
            side0 = np.where(labels == 0)[0]
            if side1.size == 0 or side0.size == 0:
                part[vmap] = base + (np.arange(g.num_vertices) % kk)
                continue
            sub1, _ = g.subgraph(side1)
            sub0, _ = g.subgraph(side0)
            stack.append((sub1, vmap[side1], k1, base))
            stack.append((sub0, vmap[side0], kk - k1, base + k1))

        if k > 1:
            pweights = np.bincount(
                part, weights=graph.vwgt.astype(np.float64), minlength=k
            )
            ideal = graph.total_vertex_weight / k
            if pweights.max(initial=0.0) > self.ubfactor * ideal:
                rebalance_pass(graph, part, pweights, k, self.ubfactor * ideal)
                clock.charge(
                    "compute",
                    self.machine.cpu.edge_seconds(graph.num_directed_edges),
                    count=float(graph.num_directed_edges),
                    detail="rebalance",
                )

        finish_run(
            profiler,
            trace=trace,
            injector=injector,
            machine=self.machine,
            cut=edge_cut(graph, part),
            imbalance=imbalance(graph, part, k),
        )
        extras = {}
        if injector is not None:
            extras["degraded"] = injector.degraded
            extras["fault_events"] = list(injector.events)
        return PartitionResult(
            method=self.name,
            graph_name=graph.name,
            k=k,
            part=part,
            clock=clock,
            trace=trace,
            wall_seconds=time.perf_counter() - t0,
            extras=extras,
        )

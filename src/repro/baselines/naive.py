"""Trivial baselines: random and block partitioning.

These anchor the benchmark suite — any heuristic worth running must beat
them on cut (random) while matching their balance (both are perfectly
balanced by construction on unit weights).
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import InvalidParameterError
from ..graphs.csr import CSRGraph
from ..result import PartitionResult
from ..runtime.clock import SimClock
from ..runtime.machine import PAPER_MACHINE, MachineSpec
from ..runtime.trace import Trace

__all__ = ["RandomPartitioner", "BlockPartitioner"]


class _TrivialBase:
    def __init__(
        self, ubfactor: float = 1.03, seed: int = 1,
        machine: MachineSpec | None = None,
    ) -> None:
        if ubfactor < 1.0:
            raise InvalidParameterError("ubfactor must be >= 1.0")
        self.ubfactor = ubfactor
        self.seed = seed
        self.machine = machine or PAPER_MACHINE

    def _labels(self, graph: CSRGraph, k: int) -> np.ndarray:
        raise NotImplementedError

    def partition(self, graph: CSRGraph, k: int) -> PartitionResult:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        clock = SimClock()
        clock.set_phase("assign")
        t0 = time.perf_counter()
        part = self._labels(graph, k)
        clock.charge(
            "compute",
            self.machine.cpu.vertex_seconds(graph.num_vertices),
            count=float(graph.num_vertices),
            detail="label assignment",
        )
        return PartitionResult(
            method=self.name,  # type: ignore[attr-defined]
            graph_name=graph.name,
            k=k,
            part=part,
            clock=clock,
            trace=Trace(),
            wall_seconds=time.perf_counter() - t0,
        )


class RandomPartitioner(_TrivialBase):
    """Balanced random assignment: shuffle, then deal round-robin."""

    name = "random"

    def _labels(self, graph: CSRGraph, k: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(graph.num_vertices)
        part = np.empty(graph.num_vertices, dtype=np.int64)
        part[order] = np.arange(graph.num_vertices, dtype=np.int64) % k
        return part


class BlockPartitioner(_TrivialBase):
    """Contiguous index ranges — what a naive code does without a
    partitioner.  Quality depends entirely on the input labeling's
    locality (good for BFS/RCM-ordered meshes, terrible for shuffled
    ones), which the coalescing ablation exploits."""

    name = "block"

    def _labels(self, graph: CSRGraph, k: int) -> np.ndarray:
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.int64)
        per = -(-n // k)
        return np.minimum(np.arange(n, dtype=np.int64) // per, k - 1)

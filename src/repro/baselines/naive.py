"""Trivial baselines: random and block partitioning.

These anchor the benchmark suite — any heuristic worth running must beat
them on cut (random) while matching their balance (both are perfectly
balanced by construction on unit weights).

Like the multilevel engines, both take a frozen options dataclass
(:class:`~repro.baselines.options.RandomOptions` /
:class:`~repro.baselines.options.BlockOptions`), report through
:func:`repro.obs.profile_run` / :func:`repro.obs.finish_run` (so served
and profiled runs land in the run ledger with a config fingerprint), and
accept ``fault_plan`` / ``fault_recovery``.  The legacy kwarg
constructor (``RandomPartitioner(ubfactor=..., seed=...)``) still works.
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import InvalidParameterError
from ..faults import attach_injector
from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut, imbalance
from ..obs.hooks import finish_run, profile_run
from ..result import PartitionResult
from ..runtime.clock import SimClock
from ..runtime.machine import PAPER_MACHINE, MachineSpec
from ..runtime.trace import Trace
from .options import BlockOptions, RandomOptions

__all__ = ["RandomPartitioner", "BlockPartitioner"]


class _TrivialBase:
    options_class: type = None  # set by subclasses

    def __init__(
        self, options=None, machine: MachineSpec | None = None, **legacy,
    ) -> None:
        if legacy:
            if options is not None:
                raise InvalidParameterError(
                    "pass either an options dataclass or bare kwargs, not both"
                )
            try:
                options = self.options_class(**legacy)
            except TypeError as exc:
                valid = ", ".join(self.options_class.__dataclass_fields__)
                raise InvalidParameterError(
                    f"bad options for {self.name!r}: {exc}; valid options: {valid}"
                ) from None
        if options is not None and not isinstance(options, self.options_class):
            raise InvalidParameterError(
                f"{self.name!r} takes a {self.options_class.__name__} options "
                f"dataclass, got {type(options).__name__}; the legacy "
                f"positional (ubfactor, seed) constructor is gone — pass "
                f"keyword arguments (e.g. {type(self).__name__}(ubfactor=..., "
                f"seed=...)) or an options dataclass"
            )
        if machine is not None and not isinstance(machine, MachineSpec):
            raise InvalidParameterError(
                f"machine must be a MachineSpec, got {type(machine).__name__}"
            )
        self.options = options or self.options_class()
        self.machine = machine or PAPER_MACHINE

    # Legacy attribute access (pre-dataclass callers read these).
    @property
    def ubfactor(self) -> float:
        return self.options.ubfactor

    @property
    def seed(self) -> int:
        return self.options.seed

    def _labels(self, graph: CSRGraph, k: int) -> np.ndarray:
        raise NotImplementedError

    def partition(self, graph: CSRGraph, k: int) -> PartitionResult:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        opts = self.options
        clock = SimClock()
        injector = attach_injector(
            clock, opts.fault_plan, recover=opts.fault_recovery
        )
        trace = Trace()
        profiler = profile_run(
            clock, engine=self.name, graph=graph, k=k, options=opts,
        )
        clock.set_phase("assign")
        t0 = time.perf_counter()
        part = self._labels(graph, k)
        clock.charge(
            "compute",
            self.machine.cpu.vertex_seconds(graph.num_vertices),
            count=float(graph.num_vertices),
            detail="label assignment",
        )
        finish_run(
            profiler,
            trace=trace,
            injector=injector,
            machine=self.machine,
            cut=edge_cut(graph, part),
            imbalance=imbalance(graph, part, k),
        )
        extras = {}
        if injector is not None:
            extras["degraded"] = injector.degraded
            extras["fault_events"] = list(injector.events)
        return PartitionResult(
            method=self.name,  # type: ignore[attr-defined]
            graph_name=graph.name,
            k=k,
            part=part,
            clock=clock,
            trace=trace,
            wall_seconds=time.perf_counter() - t0,
            extras=extras,
        )


class RandomPartitioner(_TrivialBase):
    """Balanced random assignment: shuffle, then deal round-robin."""

    name = "random"
    options_class = RandomOptions

    def _labels(self, graph: CSRGraph, k: int) -> np.ndarray:
        rng = np.random.default_rng(self.options.seed)
        order = rng.permutation(graph.num_vertices)
        part = np.empty(graph.num_vertices, dtype=np.int64)
        part[order] = np.arange(graph.num_vertices, dtype=np.int64) % k
        return part


class BlockPartitioner(_TrivialBase):
    """Contiguous index ranges — what a naive code does without a
    partitioner.  Quality depends entirely on the input labeling's
    locality (good for BFS/RCM-ordered meshes, terrible for shuffled
    ones), which the coalescing ablation exploits."""

    name = "block"
    options_class = BlockOptions

    def _labels(self, graph: CSRGraph, k: int) -> np.ndarray:
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.int64)
        per = -(-n // k)
        return np.minimum(np.arange(n, dtype=np.int64) // per, k - 1)

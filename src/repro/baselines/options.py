"""Options dataclasses of the non-multilevel baselines.

The multilevel engines all take a frozen options dataclass; the
baselines historically took bare ``ubfactor``/``seed`` kwargs, which
left them outside the one-lookup-path API (`repro.api.PARTITIONERS`),
the options-hash config fingerprint, and the fault-injection plumbing.
These dataclasses close that gap: every baseline now exposes the same
canonical field set as the engines (``ubfactor``, ``seed``,
``fault_plan``, ``fault_recovery``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidParameterError

__all__ = ["RandomOptions", "BlockOptions", "SpectralOptions"]


@dataclass(frozen=True)
class _BaselineOptions:
    """Canonical fields shared by every baseline."""

    #: Balance tolerance: max part weight <= ubfactor x ideal.
    ubfactor: float = 1.03
    #: RNG seed (assignment order for random, Lanczos start for spectral).
    seed: int = 1
    #: Optional fault plan (see :mod:`repro.faults`): a FaultPlan, a plan
    #: dict, or a path to a plan JSON file.  ``None`` disables injection.
    fault_plan: object = None
    #: Respond to injected faults with retry/degradation (True) or let
    #: them crash the run (False).
    fault_recovery: bool = True

    def __post_init__(self) -> None:
        if self.ubfactor < 1.0:
            raise InvalidParameterError("ubfactor must be >= 1.0")


@dataclass(frozen=True)
class RandomOptions(_BaselineOptions):
    """Knobs of :class:`repro.baselines.RandomPartitioner`."""


@dataclass(frozen=True)
class BlockOptions(_BaselineOptions):
    """Knobs of :class:`repro.baselines.BlockPartitioner`."""


@dataclass(frozen=True)
class SpectralOptions(_BaselineOptions):
    """Knobs of :class:`repro.baselines.SpectralPartitioner`."""

    #: Modeled Lanczos sweeps per bisection (drives the cost model).
    lanczos_iterations: int = 60

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.lanczos_iterations < 1:
            raise InvalidParameterError("lanczos_iterations must be >= 1")

"""Fiduccia-Mattheyses boundary refinement for bisections.

The "modified Kernighan-Lin" of paper Sec. II.A.3: boundary vertices move
between the two sides in gain order under a balance constraint; a pass
allows negative-gain hill climbing and rolls back to the best prefix.
Used after each GGGP bisection and inside the parallel partitioners'
initial-partitioning stages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = ["FMResult", "fm_refine_bisection", "bisection_gains"]

#: Abort a pass after this many consecutive non-improving moves.
_STALL_LIMIT = 64


@dataclass(frozen=True)
class FMResult:
    part: np.ndarray
    cut: int
    passes_run: int
    moves_committed: int


def bisection_gains(graph: CSRGraph, part: np.ndarray) -> np.ndarray:
    """FM gain of every vertex: external minus internal incident weight."""
    src = graph.source_array()
    same = part[src] == part[graph.adjncy]
    signed = np.where(same, -graph.adjwgt, graph.adjwgt)
    gains = np.zeros(graph.num_vertices, dtype=np.int64)
    np.add.at(gains, src, signed)
    return gains


def fm_refine_bisection(
    graph: CSRGraph,
    part: np.ndarray,
    target_weights: tuple[int, int],
    ubfactor: float = 1.03,
    max_passes: int = 4,
    pinned: np.ndarray | None = None,
) -> FMResult:
    """Refine a 0/1 partition in place semantics (returns a new array).

    ``target_weights`` are the ideal side weights (unequal for non-power-
    of-two recursive bisection); a side may not exceed ``ubfactor x
    target``.  Each pass moves vertices in best-gain order with lockout,
    tracks the best prefix, and reverts the tail.  ``pinned`` vertices
    contribute gains as context but never move (interface-region halos).
    """
    part = np.asarray(part, dtype=np.int64).copy()
    n = graph.num_vertices
    if n == 0:
        return FMResult(part, 0, 0, 0)
    pinned_mask = (
        np.zeros(n, dtype=bool) if pinned is None else np.asarray(pinned, dtype=bool)
    )
    vwgt = graph.vwgt
    adjp, adjncy, adjwgt = graph.adjp, graph.adjncy, graph.adjwgt
    maxw = (ubfactor * target_weights[0], ubfactor * target_weights[1])

    side_w = [int(vwgt[part == 0].sum()), int(vwgt[part == 1].sum())]
    from ..graphs.metrics import edge_cut

    cut = edge_cut(graph, part)
    total_moves = 0
    passes_run = 0

    for _ in range(max_passes):
        passes_run += 1
        gains = bisection_gains(graph, part).astype(np.float64)
        locked = pinned_mask.copy()
        history: list[int] = []
        best_prefix = 0
        best_cut = cut
        running_cut = cut
        stall = 0

        while True:
            # Movable: unlocked and balance-feasible after the move.
            cand = gains.copy()
            cand[locked] = -np.inf
            dest = 1 - part
            feasible = (
                np.array(side_w)[dest] + vwgt <= np.array(maxw)[dest]
            )
            cand[~feasible] = -np.inf
            v = int(np.argmax(cand))
            if not np.isfinite(cand[v]):
                break
            g = int(gains[v])
            s = int(part[v])
            d = 1 - s
            part[v] = d
            side_w[s] -= int(vwgt[v])
            side_w[d] += int(vwgt[v])
            locked[v] = True
            running_cut -= g
            history.append(v)
            # Incremental neighbor gain update: an edge to v's new side
            # just became internal for same-side neighbors (their gain
            # drops) and external for the ones left behind (gain rises).
            a, b = adjp[v], adjp[v + 1]
            nbrs = adjncy[a:b]
            ws = adjwgt[a:b]
            same_side = part[nbrs] == d
            gains[nbrs[same_side]] -= 2 * ws[same_side]
            gains[nbrs[~same_side]] += 2 * ws[~same_side]
            gains[v] = -g

            if running_cut < best_cut:
                best_cut = running_cut
                best_prefix = len(history)
                stall = 0
            else:
                stall += 1
                if stall >= _STALL_LIMIT:
                    break

        # Roll back moves after the best prefix.
        for v in reversed(history[best_prefix:]):
            d = int(part[v])
            s = 1 - d
            part[v] = s
            side_w[d] -= int(vwgt[v])
            side_w[s] += int(vwgt[v])
        total_moves += best_prefix
        if best_cut >= cut:
            cut = best_cut
            break
        cut = best_cut

    return FMResult(part, cut, passes_run, total_moves)

"""Greedy Graph Growing Partitioning (paper Sec. II.A.2).

Metis's initial bisection: start from a random vertex and grow a region
breadth-first, always absorbing the frontier vertex whose inclusion
decreases the edge cut the most, until the region holds (about) the
target half of the total vertex weight.  Several trials from different
seeds are run and the best cut wins.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut

__all__ = ["gggp_bisect", "grow_region"]


def grow_region(
    graph: CSRGraph, seed_vertex: int, target_weight: int
) -> np.ndarray:
    """Grow one region from ``seed_vertex`` to ~``target_weight``.

    Returns a 0/1 label array (1 = inside the region).  Gain of a frontier
    vertex = (edge weight into the region) - (edge weight out of it); the
    maximal-gain vertex is absorbed each step.  If the frontier empties
    while underweight (disconnected graph), growth restarts from the
    lightest outside vertex.
    """
    n = graph.num_vertices
    inside = np.zeros(n, dtype=bool)
    gain = np.full(n, -np.inf)
    in_frontier = np.zeros(n, dtype=bool)

    adjp, adjncy, adjwgt = graph.adjp, graph.adjncy, graph.adjwgt

    def absorb(v: int) -> None:
        inside[v] = True
        in_frontier[v] = False
        gain[v] = -np.inf
        s, e = adjp[v], adjp[v + 1]
        nbrs = adjncy[s:e]
        ws = adjwgt[s:e]
        outs = ~inside[nbrs]
        for u, w in zip(nbrs[outs], ws[outs]):
            if not in_frontier[u]:
                # First sighting: gain = w(u->region) - w(u->rest).
                us, ue = adjp[u], adjp[u + 1]
                unbrs = adjncy[us:ue]
                uws = adjwgt[us:ue]
                to_in = int(uws[inside[unbrs]].sum())
                gain[u] = 2 * to_in - int(uws.sum())
                in_frontier[u] = True
            else:
                gain[u] += 2 * int(w)

    weight = 0
    v = seed_vertex
    while weight < target_weight:
        absorb(v)
        weight += int(graph.vwgt[v])
        if weight >= target_weight:
            break
        if not in_frontier.any():
            outside = np.where(~inside)[0]
            if outside.size == 0:
                break
            v = int(outside[np.argmin(graph.vwgt[outside])])
            continue
        v = int(np.argmax(np.where(in_frontier, gain, -np.inf)))
    return inside.astype(np.int64)


def gggp_bisect(
    graph: CSRGraph,
    fraction: float = 0.5,
    trials: int = 4,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Best-of-``trials`` GGGP bisection.

    ``fraction`` is the target share of total vertex weight in side 1
    (recursive bisection into unequal k uses ceil(k/2)/k).  Returns 0/1
    labels; side 1 is the grown region.
    """
    rng = rng or np.random.default_rng(0)
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    target = max(1, int(round(graph.total_vertex_weight * fraction)))
    best_part: np.ndarray | None = None
    best_cut = None
    for _ in range(max(1, trials)):
        seed_vertex = int(rng.integers(0, n))
        part = grow_region(graph, seed_vertex, target)
        cut = edge_cut(graph, part)
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_part = part
    assert best_part is not None
    return best_part

"""Partition projection (paper Sec. II.A.3, "Projection").

"The coarser graph is projected back to the finer graph by transferring
the partition assignment of each vertex to the corresponding vertices in
the finer graph."
"""

from __future__ import annotations

import numpy as np

__all__ = ["project_partition"]


def project_partition(coarse_part: np.ndarray, cmap: np.ndarray) -> np.ndarray:
    """Fine-graph labels from coarse labels: ``part[v] = coarse[cmap[v]]``."""
    return np.asarray(coarse_part, dtype=np.int64)[np.asarray(cmap, dtype=np.int64)]

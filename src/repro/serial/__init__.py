"""Serial multilevel partitioner (Metis baseline)."""

from .bisection import bisect_once, recursive_bisection
from .coarsen import CoarseningLevel, coarsen_graph
from .contraction import build_cmap, contract
from .fm import FMResult, bisection_gains, fm_refine_bisection
from .gain_buckets import GainBuckets, fm_refine_bisection_buckets
from .gggp import gggp_bisect, grow_region
from .kway import (
    KwayPassResult,
    kway_connectivity,
    kway_refine,
    kway_refine_pass,
    rebalance_pass,
)
from .matching import MatchResult, match_is_valid, sequential_match
from .options import SerialOptions
from .partitioner import SerialMetis
from .project import project_partition

__all__ = [
    "SerialOptions",
    "SerialMetis",
    "MatchResult",
    "sequential_match",
    "match_is_valid",
    "build_cmap",
    "contract",
    "CoarseningLevel",
    "coarsen_graph",
    "gggp_bisect",
    "grow_region",
    "FMResult",
    "fm_refine_bisection",
    "fm_refine_bisection_buckets",
    "GainBuckets",
    "bisection_gains",
    "recursive_bisection",
    "bisect_once",
    "KwayPassResult",
    "kway_connectivity",
    "kway_refine",
    "kway_refine_pass",
    "rebalance_pass",
    "project_partition",
]

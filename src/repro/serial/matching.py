"""Sequential matching schemes (paper Sec. II.A.1).

Heavy-edge matching (HEM) visits vertices in random order and matches
each unmatched vertex with its unmatched neighbor of maximum edge weight;
random matching (RM) picks a random unmatched neighbor; light-edge
matching (LEM) picks the minimum-weight neighbor.  Unmatchable vertices
match themselves, giving them "another chance ... in the following
coarsening levels".

The sequential semantics matter: they are what gives serial Metis its
quality edge over the lock-free parallel matchings (Table III).  The
implementation hybridises for speed — a vectorised heaviest-neighbor
precomputation feeds the sequential pass, which falls back to an explicit
adjacency scan only when the precomputed candidate was taken earlier in
the pass.  The produced matching is identical to the fully sequential
scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._segments import segmented_argmax
from ..graphs.csr import CSRGraph

__all__ = ["MatchResult", "sequential_match", "match_is_valid"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one matching pass.

    ``match[v]`` is v's partner (== v for self-matched).  ``pairs`` is the
    number of two-vertex matches; ``edge_scans`` counts adjacency-entry
    visits for the CPU cost model.
    """

    match: np.ndarray
    pairs: int
    edge_scans: int


def _precompute_candidates(graph: CSRGraph, scheme: str, rng: np.random.Generator) -> np.ndarray:
    """Best-neighbor candidate per vertex ignoring matching state."""
    lens = graph.degrees()
    if scheme == "hem":
        flat = segmented_argmax(graph.adjwgt.astype(np.float64), lens)
    elif scheme == "lem":
        flat = segmented_argmax(-graph.adjwgt.astype(np.float64), lens)
    else:  # rm — a random neighbor
        flat = segmented_argmax(rng.random(graph.adjncy.shape[0]), lens)
    cand = np.full(graph.num_vertices, -1, dtype=np.int64)
    has = flat >= 0
    cand[has] = graph.adjncy[flat[has]]
    return cand


def sequential_match(
    graph: CSRGraph, scheme: str = "hem", rng: np.random.Generator | None = None
) -> MatchResult:
    """Strict sequential greedy matching in a random visit order."""
    rng = rng or np.random.default_rng(0)
    n = graph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return MatchResult(match, 0, 0)

    cand = _precompute_candidates(graph, scheme, rng)
    visit = rng.permutation(n)
    adjp = graph.adjp
    adjncy = graph.adjncy
    adjwgt = graph.adjwgt
    pairs = 0
    edge_scans = int(graph.num_directed_edges)  # candidate precompute pass

    for v in visit:
        if match[v] >= 0:
            continue
        c = cand[v]
        if c >= 0 and match[c] < 0:
            match[v] = c
            match[c] = v
            pairs += 1
            continue
        # Fallback: scan for the best unmatched neighbor now.
        s, e = adjp[v], adjp[v + 1]
        nbrs = adjncy[s:e]
        edge_scans += int(e - s)
        free = match[nbrs] < 0
        if not np.any(free):
            match[v] = v
            continue
        if scheme == "hem":
            j = int(np.argmax(np.where(free, adjwgt[s:e], -1)))
        elif scheme == "lem":
            big = int(adjwgt.max(initial=1)) + 1
            j = int(np.argmin(np.where(free, adjwgt[s:e], big)))
        else:
            free_idx = np.where(free)[0]
            j = int(free_idx[rng.integers(0, free_idx.shape[0])])
        u = int(nbrs[j])
        match[v] = u
        match[u] = v
        pairs += 1

    return MatchResult(match, pairs, edge_scans)


def match_is_valid(graph: CSRGraph, match: np.ndarray) -> bool:
    """A matching is valid iff it is an involution into closed neighborhoods."""
    n = graph.num_vertices
    match = np.asarray(match, dtype=np.int64)
    if match.shape[0] != n:
        return False
    if n == 0:
        return True
    if match.min() < 0 or match.max() >= n:
        return False
    if not np.array_equal(match[match], np.arange(n, dtype=np.int64)):
        return False
    # Matched partners must be adjacent.
    vs = np.where(match != np.arange(n))[0]
    for v in vs:
        if match[v] not in graph.neighbors(int(v)):
            return False
    return True

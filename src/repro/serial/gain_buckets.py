"""Gain-bucket priority structure for FM refinement.

The classic Fiduccia-Mattheyses data structure: an array of doubly-linked
buckets indexed by gain, giving O(1) best-gain extraction and O(1) gain
updates.  The array-scan FM in :mod:`repro.serial.fm` is O(n) per move;
this structure makes each move O(deg) — the "linear-time heuristic" of
the FM paper the partitioners cite [17].

Implemented with numpy-backed intrusive linked lists (no per-node Python
objects), and verified equivalent to the scan implementation by the
property tests.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from .fm import FMResult, bisection_gains

__all__ = ["GainBuckets", "fm_refine_bisection_buckets"]


class GainBuckets:
    """Bucket priority queue over integer gains in [-max_gain, max_gain].

    ``pop_best(side_ok)`` returns the highest-gain unlocked vertex whose
    move is feasible per the caller's mask; ``update`` moves a vertex
    between buckets after a delta.
    """

    __slots__ = ("offset", "heads", "next", "prev", "gain", "in_queue", "max_ptr")

    def __init__(self, gains: np.ndarray, max_gain: int) -> None:
        n = gains.shape[0]
        self.offset = int(max_gain)
        nbuckets = 2 * self.offset + 1
        self.heads = np.full(nbuckets, -1, dtype=np.int64)
        self.next = np.full(n, -1, dtype=np.int64)
        self.prev = np.full(n, -1, dtype=np.int64)
        self.gain = np.clip(gains, -self.offset, self.offset).astype(np.int64)
        self.in_queue = np.zeros(n, dtype=bool)
        self.max_ptr = 0  # highest occupied bucket index
        for v in range(n):
            self._push(v)

    # -- intrusive list ops -------------------------------------------------
    def _bucket(self, v: int) -> int:
        return int(self.gain[v]) + self.offset

    def _push(self, v: int) -> None:
        b = self._bucket(v)
        head = self.heads[b]
        self.next[v] = head
        self.prev[v] = -1
        if head >= 0:
            self.prev[head] = v
        self.heads[b] = v
        self.in_queue[v] = True
        if b > self.max_ptr:
            self.max_ptr = b

    def remove(self, v: int) -> None:
        if not self.in_queue[v]:
            return
        b = self._bucket(v)
        nxt, prv = self.next[v], self.prev[v]
        if prv >= 0:
            self.next[prv] = nxt
        else:
            self.heads[b] = nxt
        if nxt >= 0:
            self.prev[nxt] = prv
        self.next[v] = self.prev[v] = -1
        self.in_queue[v] = False

    def update(self, v: int, delta: int) -> None:
        """Apply a gain delta, rebucketing if v is still queued."""
        if self.in_queue[v]:
            self.remove(v)
            self.gain[v] = np.clip(self.gain[v] + delta, -self.offset, self.offset)
            self._push(v)
        else:
            self.gain[v] = np.clip(self.gain[v] + delta, -self.offset, self.offset)

    def pop_best(self, feasible) -> int:
        """Highest-gain queued vertex with ``feasible(v)`` true, or -1.

        Infeasible vertices are skipped but stay queued (they may become
        feasible after balance shifts).
        """
        b = self.max_ptr
        while b >= 0:
            v = self.heads[b]
            found_any = v >= 0
            while v >= 0:
                if feasible(int(v)):
                    self.remove(int(v))
                    return int(v)
                v = self.next[v]
            if not found_any and b == self.max_ptr:
                self.max_ptr -= 1
            b -= 1
        return -1


def fm_refine_bisection_buckets(
    graph: CSRGraph,
    part: np.ndarray,
    target_weights: tuple[int, int],
    ubfactor: float = 1.03,
    max_passes: int = 4,
    stall_limit: int = 64,
) -> FMResult:
    """Bucket-based FM; same semantics as
    :func:`repro.serial.fm.fm_refine_bisection` (no pinning support), with
    O(deg) moves instead of O(n) scans."""
    part = np.asarray(part, dtype=np.int64).copy()
    n = graph.num_vertices
    if n == 0:
        return FMResult(part, 0, 0, 0)
    vwgt = graph.vwgt
    adjp, adjncy, adjwgt = graph.adjp, graph.adjncy, graph.adjwgt
    maxw = (ubfactor * target_weights[0], ubfactor * target_weights[1])
    side_w = [int(vwgt[part == 0].sum()), int(vwgt[part == 1].sum())]

    from ..graphs.metrics import edge_cut

    cut = edge_cut(graph, part)
    total_moves = 0
    passes_run = 0
    # Bucket range: the max possible |gain| is the max weighted degree.
    wdeg = np.zeros(n, dtype=np.int64)
    np.add.at(wdeg, graph.source_array(), adjwgt)
    max_gain = int(wdeg.max(initial=1))

    for _ in range(max_passes):
        passes_run += 1
        buckets = GainBuckets(bisection_gains(graph, part), max_gain)
        history: list[int] = []
        best_prefix = 0
        best_cut = cut
        running_cut = cut
        stall = 0

        def feasible(v: int) -> bool:
            d = 1 - int(part[v])
            return side_w[d] + int(vwgt[v]) <= maxw[d]

        while True:
            v = buckets.pop_best(feasible)
            if v < 0:
                break
            g = int(buckets.gain[v])
            s = int(part[v])
            d = 1 - s
            part[v] = d
            side_w[s] -= int(vwgt[v])
            side_w[d] += int(vwgt[v])
            running_cut -= g
            history.append(v)
            a, b = adjp[v], adjp[v + 1]
            for u, w in zip(adjncy[a:b], adjwgt[a:b]):
                u = int(u)
                delta = -2 * int(w) if part[u] == d else 2 * int(w)
                buckets.update(u, delta)
            if running_cut < best_cut:
                best_cut = running_cut
                best_prefix = len(history)
                stall = 0
            else:
                stall += 1
                if stall >= stall_limit:
                    break

        for v in reversed(history[best_prefix:]):
            d = int(part[v])
            s = 1 - d
            part[v] = s
            side_w[d] -= int(vwgt[v])
            side_w[s] += int(vwgt[v])
        total_moves += best_prefix
        if best_cut >= cut:
            cut = best_cut
            break
        cut = best_cut

    return FMResult(part, cut, passes_run, total_moves)

"""Control parameters of the serial multilevel partitioner.

Defaults follow Metis (Karypis & Kumar, SIAM JSC 20(1)) and the paper's
experimental setup: 3 % imbalance tolerance, HEM matching, coarsening
until the graph has ~max(COARSEN_FACTOR x k, COARSEN_MIN) vertices or
shrinkage stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidParameterError

__all__ = ["SerialOptions"]


@dataclass(frozen=True)
class SerialOptions:
    """Knobs of :class:`repro.serial.SerialMetis`."""

    #: Balance tolerance: max part weight <= ubfactor x ideal (paper: 1.03).
    ubfactor: float = 1.03
    #: Matching scheme: "hem" (heavy edge), "rm" (random), "lem" (light edge).
    matching: str = "hem"
    #: Stop coarsening when |V| <= coarsen_to_factor * k ...
    coarsen_to_factor: int = 20
    #: ... but never below this floor.
    coarsen_min: int = 64
    #: Stop if a level shrinks the graph by less than this fraction
    #: (Metis's "difference ... less than a threshold value").
    min_shrink: float = 0.05
    #: GGGP restarts per bisection; the best cut wins (Metis uses 4).
    gggp_trials: int = 4
    #: FM refinement passes per bisection level.
    fm_passes: int = 4
    #: Greedy k-way refinement passes per uncoarsening level.
    kway_passes: int = 4
    #: RNG seed for matching order and GGGP seeds.
    seed: int = 1
    #: Optional fault plan (see :mod:`repro.faults`): a FaultPlan, a plan
    #: dict, or a path to a plan JSON file.  ``None`` disables injection.
    fault_plan: object = None
    #: Respond to injected faults with retry/degradation (True) or let
    #: them crash the run (False — the faults self-check's mutation).
    fault_recovery: bool = True

    def __post_init__(self) -> None:
        if self.ubfactor < 1.0:
            raise InvalidParameterError("ubfactor must be >= 1.0")
        if self.matching not in ("hem", "rm", "lem"):
            raise InvalidParameterError(f"unknown matching scheme {self.matching!r}")
        if self.coarsen_to_factor < 1 or self.coarsen_min < 2:
            raise InvalidParameterError("coarsening thresholds out of range")
        if not (0.0 <= self.min_shrink < 1.0):
            raise InvalidParameterError("min_shrink must be in [0, 1)")
        if min(self.gggp_trials, self.fm_passes, self.kway_passes) < 1:
            raise InvalidParameterError("trial/pass counts must be >= 1")

    def coarsen_target(self, k: int) -> int:
        return max(self.coarsen_min, self.coarsen_to_factor * k)

"""The serial multilevel partitioner (the paper's Metis baseline).

Coarsen with sequential HEM, bisect the coarsest graph recursively with
GGGP + FM, then project back level by level with greedy k-way refinement
— the three-phase structure of paper Sec. II.A.  All work is charged to
the single-core CPU model, making this the denominator of every speedup
in Fig. 5.
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import InvalidParameterError
from ..faults import attach_injector
from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut, imbalance
from ..obs.hooks import finish_run, profile_run
from ..result import PartitionResult
from ..runtime.clock import SimClock
from ..runtime.machine import PAPER_MACHINE, MachineSpec
from ..runtime.trace import RefinementRecord, Trace
from .bisection import recursive_bisection
from .coarsen import coarsen_graph
from .kway import kway_refine
from .options import SerialOptions
from .project import project_partition

__all__ = ["SerialMetis"]


class SerialMetis:
    """Serial Metis-style multilevel k-way partitioner."""

    name = "metis"

    def __init__(
        self,
        options: SerialOptions | None = None,
        machine: MachineSpec | None = None,
    ) -> None:
        self.options = options or SerialOptions()
        self.machine = machine or PAPER_MACHINE

    def partition(self, graph: CSRGraph, k: int) -> PartitionResult:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        opts = self.options
        clock = SimClock()
        # A single-core engine has no faultable substrate (no device, pool
        # or MPI layer), but attaching keeps the option contract uniform —
        # the plan simply never fires, and metrics report that honestly.
        injector = attach_injector(
            clock, opts.fault_plan, recover=opts.fault_recovery
        )
        trace = Trace()
        profiler = profile_run(
            clock, engine=self.name, graph=graph, k=k, options=self.options
        )
        rng = np.random.default_rng(opts.seed)
        t0 = time.perf_counter()

        # Phase 1: coarsening.
        clock.set_phase("coarsening")
        levels, coarsest = coarsen_graph(
            graph, k, opts, clock=clock, cpu=self.machine.cpu, trace=trace, rng=rng
        )

        # Phase 2: initial partitioning on the coarsest graph.
        clock.set_phase("initpart")
        part = recursive_bisection(coarsest, k, opts, rng=rng)
        # Recursive bisection cost: each of the log2(k) tree levels sweeps
        # the whole coarsest graph a constant number of times (GGGP trials
        # + FM passes).
        sweeps = (opts.gggp_trials + opts.fm_passes) * max(1, int(np.ceil(np.log2(max(k, 2)))))
        bisect_sec = self.machine.cpu.edge_seconds(
            sweeps * coarsest.num_directed_edges,
            avg_degree=2 * coarsest.num_edges / max(1, coarsest.num_vertices),
        )
        clock.charge(
            "compute", bisect_sec,
            count=float(sweeps * coarsest.num_directed_edges),
            detail="recursive bisection",
        )
        hw = getattr(clock, "hw", None)
        if hw is not None:
            hw.record_cpu("edge", float(sweeps * coarsest.num_directed_edges),
                          bisect_sec, bisect_sec / self.machine.cpu.num_cores)

        # Phase 3: uncoarsening with greedy k-way refinement.
        clock.set_phase("uncoarsening")
        for level_idx in range(len(levels) - 1, -1, -1):
            level = levels[level_idx]
            part = project_partition(part, level.cmap)
            project_sec = self.machine.cpu.vertex_seconds(level.graph.num_vertices)
            clock.charge(
                "compute", project_sec,
                count=float(level.graph.num_vertices),
                detail=f"project level {level_idx}",
            )
            if hw is not None:
                hw.record_cpu("vertex", float(level.graph.num_vertices),
                              project_sec,
                              project_sec / self.machine.cpu.num_cores)
                # part[cmap] gathers one 8 B label per fine vertex.
                hw.record_random_bytes(8.0 * level.graph.num_vertices)
            cut_before = edge_cut(level.graph, part)
            part, passes = kway_refine(
                level.graph, part, k, ubfactor=opts.ubfactor,
                max_passes=opts.kway_passes, rng=rng,
            )
            cut_after = edge_cut(level.graph, part)
            for pi, pres in enumerate(passes):
                pass_sec = self.machine.cpu.edge_seconds(
                    pres.edge_scans,
                    avg_degree=2 * level.graph.num_edges
                    / max(1, level.graph.num_vertices),
                )
                clock.charge(
                    "compute", pass_sec,
                    count=float(pres.edge_scans),
                    detail=f"kway pass level {level_idx}",
                )
                if hw is not None:
                    hw.record_cpu("edge", float(pres.edge_scans), pass_sec,
                                  pass_sec / self.machine.cpu.num_cores)
                trace.refinements.append(
                    RefinementRecord(
                        level=level_idx, pass_index=pi,
                        moves_proposed=pres.moves_proposed,
                        moves_committed=pres.moves_committed,
                        cut_before=cut_before, cut_after=cut_after,
                        engine="cpu-serial",
                    )
                )

        finish_run(
            profiler,
            trace=trace,
            injector=injector,
            machine=self.machine,
            cut=edge_cut(graph, part),
            imbalance=imbalance(graph, part, k),
        )
        extras = {}
        if injector is not None:
            extras["degraded"] = injector.degraded
            extras["fault_events"] = list(injector.events)
        return PartitionResult(
            method=self.name,
            graph_name=graph.name,
            k=k,
            part=part,
            clock=clock,
            trace=trace,
            wall_seconds=time.perf_counter() - t0,
            extras=extras,
        )

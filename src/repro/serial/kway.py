"""Greedy k-way boundary refinement (paper Sec. II.A.3).

During un-coarsening, boundary vertices are visited in gain order and
moved to the adjacent partition with the largest edge-cut reduction,
"however, the balance among the partitions should be maintained after
this movement".  A vectorised snapshot computes candidate moves; each
application re-validates the gain against current state (neighbors may
have moved earlier in the pass), so a pass can only ever reduce the cut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._segments import gather_ranges, segment_ids
from ..graphs.csr import CSRGraph

__all__ = [
    "KwayPassResult",
    "kway_connectivity",
    "kway_refine_pass",
    "kway_refine",
    "rebalance_pass",
]


@dataclass(frozen=True)
class KwayPassResult:
    moves_proposed: int
    moves_committed: int
    gain_realised: int
    edge_scans: int


def kway_connectivity(
    graph: CSRGraph, part: np.ndarray, vertices: np.ndarray, k: int
) -> np.ndarray:
    """Dense (len(vertices), k) matrix of edge weight from each vertex to
    each partition."""
    lens = graph.adjp[vertices + 1] - graph.adjp[vertices]
    flat = gather_ranges(graph.adjp[vertices], lens)
    rows = segment_ids(lens)
    conn = np.zeros((vertices.shape[0], k), dtype=np.int64)
    np.add.at(conn, (rows, part[graph.adjncy[flat]]), graph.adjwgt[flat])
    return conn


def kway_refine_pass(
    graph: CSRGraph,
    part: np.ndarray,
    pweights: np.ndarray,
    k: int,
    max_pweight: float,
    min_pweight: float,
    rng: np.random.Generator,
) -> KwayPassResult:
    """One refinement pass; mutates ``part`` and ``pweights`` in place."""
    n = graph.num_vertices
    src = graph.source_array()
    ext = part[src] != part[graph.adjncy]
    bmask = np.zeros(n, dtype=bool)
    bmask[src[ext]] = True
    boundary = np.where(bmask)[0]
    edge_scans = int(graph.num_directed_edges)
    if boundary.size == 0:
        return KwayPassResult(0, 0, 0, edge_scans)

    conn = kway_connectivity(graph, part, boundary, k)
    own = part[boundary]
    own_conn = conn[np.arange(boundary.shape[0]), own]
    masked = conn.copy()
    masked[np.arange(boundary.shape[0]), own] = -1
    best_dest = np.argmax(masked, axis=1)
    best_gain = masked[np.arange(boundary.shape[0]), best_dest] - own_conn
    cand = best_gain > 0
    order = np.argsort(-best_gain[cand], kind="stable")
    cand_v = boundary[cand][order]
    cand_d = best_dest[cand][order]
    edge_scans += int((graph.adjp[boundary + 1] - graph.adjp[boundary]).sum())

    adjp, adjncy, adjwgt, vwgt = graph.adjp, graph.adjncy, graph.adjwgt, graph.vwgt
    committed = 0
    realised = 0
    for v, d in zip(cand_v, cand_d):
        s = int(part[v])
        if s == d:
            continue
        w = int(vwgt[v])
        if pweights[d] + w > max_pweight or pweights[s] - w < min_pweight:
            continue
        # Re-validate gain against current labels (vectorised per vertex).
        a, b = adjp[v], adjp[v + 1]
        nbr_parts = part[adjncy[a:b]]
        ws = adjwgt[a:b]
        gain = int(ws[nbr_parts == d].sum()) - int(ws[nbr_parts == s].sum())
        edge_scans += int(b - a)
        if gain <= 0:
            continue
        part[v] = d
        pweights[s] -= w
        pweights[d] += w
        committed += 1
        realised += gain
    return KwayPassResult(int(cand_v.shape[0]), committed, realised, edge_scans)


def rebalance_pass(
    graph: CSRGraph,
    part: np.ndarray,
    pweights: np.ndarray,
    k: int,
    max_pweight: float,
) -> int:
    """Evacuate overweight partitions by cheapest boundary moves.

    Moves vertices out of partitions above ``max_pweight`` into their
    best-connected underweight neighbor partition, preferring moves that
    damage the cut least.  Returns the number of moves committed.
    """
    moves = 0
    adjp, adjncy, adjwgt, vwgt = graph.adjp, graph.adjncy, graph.adjwgt, graph.vwgt
    for _ in range(k):  # at most k evacuation rounds
        heavy = np.where(pweights > max_pweight)[0]
        if heavy.size == 0:
            break
        heavy_set = set(heavy.tolist())
        candidates = np.where(np.isin(part, heavy))[0]
        if candidates.size == 0:
            break
        conn = kway_connectivity(graph, part, candidates, k)
        own = part[candidates]
        own_conn = conn[np.arange(candidates.shape[0]), own]
        masked = conn.copy()
        masked[np.arange(candidates.shape[0]), own] = -1
        best_dest = np.argmax(masked, axis=1)
        loss = own_conn - masked[np.arange(candidates.shape[0]), best_dest]
        order = np.argsort(loss, kind="stable")
        progressed = False
        for i in order:
            v = int(candidates[i])
            s = int(part[v])
            if s not in heavy_set or pweights[s] <= max_pweight:
                continue
            w = int(vwgt[v])
            # Destination: best-connected partition with headroom; fall
            # back to the globally lightest partition.
            a, b = adjp[v], adjp[v + 1]
            nbr_parts = part[adjncy[a:b]]
            ws = adjwgt[a:b]
            d = -1
            best_c = -1
            for p in np.unique(nbr_parts):
                if p == s:
                    continue
                if pweights[p] + w <= max_pweight:
                    c = int(ws[nbr_parts == p].sum())
                    if c > best_c:
                        best_c = c
                        d = int(p)
            if d < 0:
                d = int(np.argmin(pweights))
                if d == s or pweights[d] + w > max_pweight:
                    continue
            part[v] = d
            pweights[s] -= w
            pweights[d] += w
            moves += 1
            progressed = True
        if not progressed:
            break
    return moves


def kway_refine(
    graph: CSRGraph,
    part: np.ndarray,
    k: int,
    ubfactor: float = 1.03,
    max_passes: int = 4,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, list[KwayPassResult]]:
    """Run refinement passes until no move commits or the pass budget ends."""
    rng = rng or np.random.default_rng(0)
    part = np.asarray(part, dtype=np.int64).copy()
    total = graph.total_vertex_weight
    ideal = total / k if k else 0.0
    max_pw = ubfactor * ideal
    # Metis floors partitions at (2 - ubfactor) x ideal so none empties out.
    min_pw = max(0.0, (2.0 - ubfactor) * ideal)
    pweights = np.bincount(part, weights=graph.vwgt.astype(np.float64), minlength=k)
    results: list[KwayPassResult] = []
    if k > 1 and pweights.max(initial=0.0) > max_pw:
        rebalance_pass(graph, part, pweights, k, max_pw)
    for _ in range(max_passes):
        res = kway_refine_pass(graph, part, pweights, k, max_pw, min_pw, rng)
        results.append(res)
        if res.moves_committed == 0:
            break
    return part, results

"""Graph contraction (paper Sec. II.A.1, "contraction step").

Given a matching, collapse each matched pair into one coarse vertex:

* coarse vertex weight = sum of the pair's weights;
* edges to a common neighbor merge, weights summing —
  ``w(c, x) = w(u, x) + w(v, x)``;
* the matched edge itself disappears (it would be a self-loop).

``build_cmap`` numbers coarse vertices by the smaller endpoint of each
pair in vertex order — the same numbering the GPU's 4-kernel pipeline
(Fig. 4) produces, so serial and device results agree exactly.
"""

from __future__ import annotations

import numpy as np

from .._segments import aggregate_arcs
from ..graphs.csr import CSRGraph

__all__ = ["build_cmap", "contract"]


def build_cmap(match: np.ndarray) -> tuple[np.ndarray, int]:
    """Coarse vertex label per fine vertex, given a matching.

    Representative of a pair is ``min(v, match[v])``; labels are ranks of
    representatives — exactly Fig. 4's ``PV``-scan numbering.
    """
    match = np.asarray(match, dtype=np.int64)
    n = match.shape[0]
    ids = np.arange(n, dtype=np.int64)
    is_rep = ids <= match
    cmap = np.empty(n, dtype=np.int64)
    cmap[is_rep] = np.cumsum(is_rep)[is_rep] - 1
    cmap[~is_rep] = cmap[match[~is_rep]]
    return cmap, int(is_rep.sum())


def contract(graph: CSRGraph, match: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Build the coarser graph; returns (coarse_graph, cmap)."""
    cmap, n_coarse = build_cmap(match)
    src = graph.source_array()
    csrc = cmap[src]
    cdst = cmap[graph.adjncy]
    keep = csrc != cdst
    adjp, adjncy, adjwgt = aggregate_arcs(
        csrc[keep], cdst[keep], graph.adjwgt[keep], n_coarse
    )
    vwgt = np.zeros(n_coarse, dtype=np.int64)
    np.add.at(vwgt, cmap, graph.vwgt)
    coarse = CSRGraph(
        adjp=adjp, adjncy=adjncy, adjwgt=adjwgt, vwgt=vwgt,
        name=f"{graph.name}@c{n_coarse}",
    )
    return coarse, cmap

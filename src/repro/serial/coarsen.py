"""The coarsening level loop with Metis-style stop criteria."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..runtime.clock import SimClock
from ..runtime.machine import CpuSpec
from ..runtime.trace import LevelRecord, Trace
from .contraction import contract
from .matching import sequential_match
from .options import SerialOptions

__all__ = ["CoarseningLevel", "coarsen_graph"]


@dataclass
class CoarseningLevel:
    """One rung of the multilevel ladder (finer graph + its cmap down)."""

    graph: CSRGraph
    cmap: np.ndarray  # maps this graph's vertices to the next-coarser graph


def coarsen_graph(
    graph: CSRGraph,
    k: int,
    opts: SerialOptions,
    clock: SimClock | None = None,
    cpu: CpuSpec | None = None,
    trace: Trace | None = None,
    rng: np.random.Generator | None = None,
    target: int | None = None,
    engine_label: str = "cpu-serial",
) -> tuple[list[CoarseningLevel], CSRGraph]:
    """Coarsen until the target size or shrink stall.

    Returns the ladder of levels (finest first) and the coarsest graph.
    Every level's work is charged to ``clock`` under the CPU model:
    matching scans + contraction traverse all arcs once each.
    """
    rng = rng or np.random.default_rng(opts.seed)
    target = target if target is not None else opts.coarsen_target(k)
    levels: list[CoarseningLevel] = []
    current = graph
    level_idx = 0
    while current.num_vertices > target:
        mres = sequential_match(current, opts.matching, rng)
        coarse, cmap = contract(current, mres.match)
        if clock is not None and cpu is not None:
            edge_work = mres.edge_scans + current.num_directed_edges
            avg_deg = 2 * current.num_edges / max(1, current.num_vertices)
            edge_sec = cpu.edge_seconds(edge_work, avg_degree=avg_deg)
            vert_sec = cpu.vertex_seconds(2 * current.num_vertices)
            clock.charge(
                "compute", edge_sec + vert_sec,
                count=float(edge_work),
                detail=f"coarsen level {level_idx}",
            )
            hw = getattr(clock, "hw", None)
            if hw is not None:
                hw.record_cpu("edge", float(edge_work), edge_sec,
                              edge_sec / cpu.num_cores)
                hw.record_cpu("vertex", float(2 * current.num_vertices),
                              vert_sec, vert_sec / cpu.num_cores)
                # Matching chases adjacency lists in vertex order — one
                # scattered 8 B read per scanned arc.
                hw.record_random_bytes(8.0 * mres.edge_scans)
        if trace is not None:
            trace.levels.append(
                LevelRecord(
                    level=level_idx,
                    num_vertices=current.num_vertices,
                    num_edges=current.num_edges,
                    matched_pairs=mres.pairs,
                    self_matches=current.num_vertices - 2 * mres.pairs,
                    engine=engine_label,
                )
            )
        shrink = 1.0 - coarse.num_vertices / current.num_vertices
        levels.append(CoarseningLevel(graph=current, cmap=cmap))
        current = coarse
        level_idx += 1
        if shrink < opts.min_shrink:
            break
    return levels, current

"""Recursive bisection to k parts (paper Sec. II.A.2).

"By repeating this recursive bisection method, the required number of
partitions is obtained."  Each split runs best-of-trials GGGP followed by
FM refinement; non-power-of-two k splits at ceil(k/2)/k so part weights
stay proportional.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import PartitioningError
from ..graphs.csr import CSRGraph
from .fm import fm_refine_bisection
from .gggp import gggp_bisect
from .options import SerialOptions

__all__ = ["recursive_bisection", "bisect_once"]


def bisect_once(
    graph: CSRGraph,
    fraction: float,
    opts: SerialOptions,
    rng: np.random.Generator,
) -> np.ndarray:
    """One GGGP + FM bisection; returns 0/1 labels (1 = grown region)."""
    part = gggp_bisect(graph, fraction=fraction, trials=opts.gggp_trials, rng=rng)
    total = graph.total_vertex_weight
    t1 = int(round(total * fraction))
    res = fm_refine_bisection(
        graph, part, (total - t1, t1), ubfactor=opts.ubfactor, max_passes=opts.fm_passes
    )
    return res.part


def recursive_bisection(
    graph: CSRGraph,
    k: int,
    opts: SerialOptions,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Partition into k parts by recursive bisection; returns labels 0..k-1.

    Imbalance compounds multiplicatively down the bisection tree, so each
    split runs with tolerance ``ubfactor**(1/depth)`` — standard Metis
    practice to land the final k-way partition inside ``ubfactor``.
    """
    if k < 1:
        raise PartitioningError(f"k must be >= 1, got {k}")
    rng = rng or np.random.default_rng(opts.seed)
    if k > 1:
        from dataclasses import replace

        depth = max(1, int(np.ceil(np.log2(k))))
        opts = replace(opts, ubfactor=float(opts.ubfactor ** (1.0 / depth)))
    n = graph.num_vertices
    part = np.zeros(n, dtype=np.int64)
    if k == 1 or n == 0:
        return part

    # Work queue of (vertex ids, coarse-to-original map, parts wanted, label base).
    stack: list[tuple[CSRGraph, np.ndarray, int, int]] = [
        (graph, np.arange(n, dtype=np.int64), k, 0)
    ]
    while stack:
        g, vmap, kk, base = stack.pop()
        if kk == 1:
            part[vmap] = base
            continue
        if g.num_vertices < kk:
            # Degenerate: fewer vertices than parts; spread round-robin.
            part[vmap] = base + (np.arange(g.num_vertices) % kk)
            continue
        k1 = (kk + 1) // 2  # ceil(k/2) -> region side
        frac = k1 / kk
        labels = bisect_once(g, frac, opts, rng)
        side1 = np.where(labels == 1)[0]
        side0 = np.where(labels == 0)[0]
        if side1.size == 0 or side0.size == 0:
            # GGGP collapse (e.g. star graphs): force a weight-balanced split.
            order = np.argsort(-g.vwgt.astype(np.int64), kind="stable")
            half = g.num_vertices // 2
            labels = np.zeros(g.num_vertices, dtype=np.int64)
            labels[order[:half]] = 1
            side1 = np.where(labels == 1)[0]
            side0 = np.where(labels == 0)[0]
        sub1, _ = g.subgraph(side1)
        sub0, _ = g.subgraph(side0)
        stack.append((sub1, vmap[side1], k1, base))
        stack.append((sub0, vmap[side0], kk - k1, base + k1))
    return part

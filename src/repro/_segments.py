"""Vectorised segment (CSR-slice) utilities shared by all partitioners.

A "segment" is a contiguous slice of a flat array described by an offsets
array (like ``adjp``).  These helpers implement the gather/argmax/group
patterns that would be per-thread loops in the CUDA original, as single
numpy passes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gather_ranges",
    "segment_ids",
    "segmented_argmax",
    "aggregate_arcs",
]


def gather_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[i], starts[i]+lengths[i])`` for all i.

    The concatenation order preserves segment order; an all-zero
    ``lengths`` yields an empty array.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    rep_starts = np.repeat(starts, lengths)
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    return rep_starts + offs


def segment_ids(lengths: np.ndarray) -> np.ndarray:
    """Segment index of each element of the flattened segments."""
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.repeat(np.arange(lengths.shape[0], dtype=np.int64), lengths)


def segmented_argmax(
    values: np.ndarray, lengths: np.ndarray, valid: np.ndarray | None = None
) -> np.ndarray:
    """Index (into the flat array) of the max element of each segment.

    ``valid`` masks elements out of consideration.  Segments that are
    empty or fully masked yield -1.  Ties resolve to the *first* valid
    maximal element (matching a sequential scan, and hence the CUDA
    thread's loop).
    """
    values = np.asarray(values)
    lengths = np.asarray(lengths, dtype=np.int64)
    n_seg = lengths.shape[0]
    total = int(lengths.sum())
    out = np.full(n_seg, -1, dtype=np.int64)
    if total == 0:
        return out
    seg = segment_ids(lengths)
    vals = values.astype(np.float64, copy=True)
    if valid is not None:
        vals[~np.asarray(valid, dtype=bool)] = -np.inf
    # Sort by (segment, value, -position) so the last entry of each segment
    # group is the first-position maximum.
    pos = np.arange(total, dtype=np.int64)
    order = np.lexsort((-pos, vals, seg))
    seg_sorted = seg[order]
    last_of_seg = np.concatenate([seg_sorted[1:] != seg_sorted[:-1], [True]])
    winners = order[last_of_seg]
    winner_segs = seg_sorted[last_of_seg]
    ok = np.isfinite(vals[winners])
    out[winner_segs[ok]] = winners[ok]
    return out


def aggregate_arcs(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray, n_vertices: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge duplicate (src, dst) arcs by summing weights; return CSR parts.

    Returns ``(adjp, adjncy, adjwgt)`` with adjacency lists sorted by
    neighbor id.  Self-arcs must already be removed by the caller.
    """
    if src.size == 0:
        return (
            np.zeros(n_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    key = src.astype(np.int64) * np.int64(n_vertices) + dst
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    uniq = np.empty(key_s.shape[0], dtype=bool)
    uniq[0] = True
    np.not_equal(key_s[1:], key_s[:-1], out=uniq[1:])
    group = np.cumsum(uniq) - 1
    merged_w = np.zeros(int(group[-1]) + 1, dtype=np.int64)
    np.add.at(merged_w, group, w[order])
    u_key = key_s[uniq]
    u_src = (u_key // n_vertices).astype(np.int64)
    u_dst = (u_key % n_vertices).astype(np.int64)
    counts = np.bincount(u_src, minlength=n_vertices)
    adjp = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=adjp[1:])
    return adjp, u_dst, merged_w

"""Parallel Jostle reproduction (paper Sec. II.A/II.B background system)."""

from .interface import (
    InterfaceRoundStats,
    pair_rounds,
    partition_pairs,
    refine_interfaces,
)
from .partitioner import Jostle, JostleOptions

__all__ = [
    "Jostle",
    "JostleOptions",
    "refine_interfaces",
    "partition_pairs",
    "pair_rounds",
    "InterfaceRoundStats",
]

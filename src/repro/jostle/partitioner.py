"""The parallel Jostle driver (paper Sec. II.A/II.B background system).

Jostle's signature moves, per the paper:

* coarsening continues until "the number of vertices in the coarse graph
  is equal to the number of required partitions", making "the initial
  partitioning phase ... trivial";
* parallel Jostle coarsens distributed until a threshold, then
  all-to-all broadcasts the coarse graph and finishes independently;
* uncoarsening uses "a combined balancing and refinement algorithm" — a
  move "is accepted even if it makes the partitions unbalanced", fixed
  in following steps — executed on isolated interface regions pair by
  pair with serial KL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..faults import attach_injector
from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut, imbalance
from ..obs.hooks import finish_run, profile_run
from ..parmetis.distgraph import DistGraph
from ..parmetis.matching import distributed_match
from ..result import PartitionResult
from ..runtime.clock import SimClock
from ..runtime.machine import PAPER_MACHINE, MachineSpec
from ..runtime.mpi import MpiSim
from ..runtime.trace import LevelRecord, RefinementRecord, Trace
from ..serial.coarsen import CoarseningLevel
from ..serial.contraction import contract
from ..serial.kway import rebalance_pass
from ..serial.matching import sequential_match
from ..mtmetis.refinement import commit_moves, propose_balance_moves
from ..serial.project import project_partition
from .interface import refine_interfaces

__all__ = ["Jostle", "JostleOptions"]


@dataclass(frozen=True)
class JostleOptions:
    """Knobs of the parallel Jostle reproduction."""

    num_ranks: int = 8
    ubfactor: float = 1.03
    matching: str = "hem"
    #: Switch from distributed to replicated coarsening below this size.
    broadcast_threshold: int = 4096
    #: Stop coarsening at ~this multiple of k (1 = the paper's "equal to
    #: the number of required partitions"; slightly above keeps the
    #: trivial assignment balanced on weighted coarse vertices).
    coarsen_to_factor: int = 2
    min_shrink: float = 0.02
    refine_sweeps: int = 2
    fm_passes: int = 2
    seed: int = 1
    #: Optional fault plan (see :mod:`repro.faults`): a FaultPlan, a plan
    #: dict, or a path to a plan JSON file.  ``None`` disables injection.
    fault_plan: object = None
    #: Respond to injected faults with retry/degradation (True) or let
    #: them crash the run (False).
    fault_recovery: bool = True

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise InvalidParameterError("num_ranks must be >= 1")
        if self.ubfactor < 1.0:
            raise InvalidParameterError("ubfactor must be >= 1.0")
        if self.coarsen_to_factor < 1:
            raise InvalidParameterError("coarsen_to_factor must be >= 1")
        if self.refine_sweeps < 1 or self.fm_passes < 1:
            raise InvalidParameterError("sweep/pass counts must be >= 1")


class Jostle:
    """Parallel multilevel partitioner in Jostle's style."""

    name = "jostle"

    def __init__(
        self,
        options: JostleOptions | None = None,
        machine: MachineSpec | None = None,
    ) -> None:
        self.options = options or JostleOptions()
        self.machine = machine or PAPER_MACHINE

    @staticmethod
    def _trivial_assignment(coarse: CSRGraph, k: int) -> np.ndarray:
        """Deal coarse vertices to partitions, one greedy sweep.

        When coarsening reaches exactly k vertices this is the identity
        (the paper's "trivial" initial partitioning); above k, vertices
        join the best-connected partition with headroom (lightest as the
        tie-break/fallback) in descending weight order, so each partition
        stays one near-connected cluster.
        """
        n = coarse.num_vertices
        part = np.full(n, -1, dtype=np.int64)
        if n <= k:
            return np.arange(n, dtype=np.int64)
        cap = 1.10 * coarse.total_vertex_weight / k
        weights = np.zeros(k, dtype=np.float64)
        order = np.argsort(-coarse.vwgt.astype(np.int64), kind="stable")
        # Seed the k partitions with the k heaviest vertices.
        for p, v in enumerate(order[:k]):
            part[v] = p
            weights[p] = float(coarse.vwgt[v])
        for v in order[k:]:
            nbrs = coarse.neighbors(int(v))
            ws = coarse.edge_weights(int(v))
            conn = np.zeros(k, dtype=np.float64)
            assigned = part[nbrs] >= 0
            np.add.at(conn, part[nbrs[assigned]], ws[assigned].astype(np.float64))
            conn[weights + coarse.vwgt[v] > cap] = -1.0
            p = int(np.argmax(conn))
            if conn[p] <= 0:
                p = int(np.argmin(weights))
            part[v] = p
            weights[p] += float(coarse.vwgt[v])
        return part

    def partition(self, graph: CSRGraph, k: int) -> PartitionResult:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        opts = self.options
        clock = SimClock()
        injector = attach_injector(
            clock, opts.fault_plan, recover=opts.fault_recovery
        )
        trace = Trace()
        profiler = profile_run(
            clock, engine=self.name, graph=graph, k=k, options=opts,
        )
        mpi = MpiSim(opts.num_ranks, self.machine.cpu, self.machine.interconnect, clock)
        rng = np.random.default_rng(opts.seed)
        t0 = time.perf_counter()

        # --------------------------------------------------------------
        # Coarsening: distributed, then broadcast + replicated, down to
        # ~k vertices.
        # --------------------------------------------------------------
        clock.set_phase("coarsening")
        levels: list[CoarseningLevel] = []
        current = graph
        level_idx = 0
        target = max(k, opts.coarsen_to_factor * k)
        broadcast_done = False
        while current.num_vertices > target:
            avg_deg = 2 * current.num_edges / max(1, current.num_vertices)
            if not broadcast_done and current.num_vertices <= opts.broadcast_threshold:
                mpi.allgather(
                    current.nbytes / max(1, opts.num_ranks),
                    detail="all-to-all broadcast before replicated coarsening",
                )
                broadcast_done = True
            if broadcast_done:
                mres = sequential_match(current, opts.matching, rng)
                match, pairs, selfm = mres.match, mres.pairs, 0
                per_rank = np.zeros(mpi.num_ranks)
                per_rank[0] = mres.edge_scans  # replicated: every rank does it
                mpi.compute(per_rank, detail=f"replicated match L{level_idx}",
                            avg_degree=avg_deg)
            else:
                dist = DistGraph.distribute(current, opts.num_ranks)
                match, mstats = distributed_match(
                    dist, mpi, scheme=opts.matching, rng=rng
                )
                pairs, selfm = mstats.pairs, mstats.self_matches
            coarse, cmap = contract(current, match)
            trace.levels.append(
                LevelRecord(
                    level=level_idx,
                    num_vertices=current.num_vertices,
                    num_edges=current.num_edges,
                    matched_pairs=pairs,
                    self_matches=selfm,
                    engine="mpi-replicated" if broadcast_done else "mpi",
                )
            )
            shrink = 1.0 - coarse.num_vertices / current.num_vertices
            levels.append(CoarseningLevel(graph=current, cmap=cmap))
            current = coarse
            level_idx += 1
            if shrink < opts.min_shrink:
                break

        # --------------------------------------------------------------
        # Trivial initial partitioning: coarse vertices dealt to the k
        # partitions, heaviest first to the lightest partition.
        # --------------------------------------------------------------
        clock.set_phase("initpart")
        part = self._trivial_assignment(current, k)
        mpi.compute_vertices(
            np.full(mpi.num_ranks, current.num_vertices / mpi.num_ranks),
            detail="trivial initpart",
        )

        # --------------------------------------------------------------
        # Uncoarsening: combined balance/refinement on interface regions.
        # --------------------------------------------------------------
        clock.set_phase("uncoarsening")
        for li in range(len(levels) - 1, -1, -1):
            level = levels[li]
            part = project_partition(part, level.cmap)
            cut_before = edge_cut(level.graph, part)
            moves_total = 0
            # Jostle accepts unbalancing moves mid-sweep; give FM slack
            # and let the following sweep (and finer levels) rebalance.
            sweep_ub = opts.ubfactor + 0.15
            for sweep in range(opts.refine_sweeps):
                part, round_stats = refine_interfaces(
                    level.graph, part, k,
                    ubfactor=opts.ubfactor if sweep else sweep_ub,
                    fm_passes=opts.fm_passes,
                )
                for rs in round_stats:
                    # A round's pairs spread over the ranks: wall time is
                    # the larger of the slowest region and the average
                    # per-rank share of the round's total work.
                    avg_deg = 1 + 2 * level.graph.num_edges / max(
                        1, level.graph.num_vertices
                    )
                    sizes = rs.region_sizes
                    critical = max(
                        max(sizes, default=0),
                        sum(sizes) / max(1, mpi.num_ranks),
                    ) * avg_deg * (1 + opts.fm_passes)
                    per_rank = np.zeros(mpi.num_ranks)
                    per_rank[0] = critical
                    mpi.compute(per_rank, detail=f"interface round L{li}")
                    moves_total += rs.moves
                dist = DistGraph.distribute(level.graph, opts.num_ranks)
                s, d, b = dist.ghost_exchange_payload()
                mpi.exchange(s, d, b, detail=f"interface halo L{li}")
            # The balancing half of "combined balancing and refinement":
            # diffuse excess weight out of overweight partitions before
            # descending to the finer level.
            pweights = np.bincount(
                part, weights=level.graph.vwgt.astype(np.float64), minlength=k
            )
            ideal_l = level.graph.total_vertex_weight / k
            guard = 0
            while pweights.max(initial=0.0) > opts.ubfactor * ideal_l and guard < k:
                vs, ds, gs, bstats = propose_balance_moves(
                    level.graph, part, k, pweights, opts.ubfactor * ideal_l
                )
                commit_moves(
                    level.graph, part, pweights, vs, ds, gs, k,
                    opts.ubfactor * ideal_l, bstats, recheck_gains=False,
                )
                guard += 1
                if bstats.committed == 0:
                    break
            trace.refinements.append(
                RefinementRecord(
                    level=li, pass_index=0,
                    moves_proposed=moves_total, moves_committed=moves_total,
                    cut_before=cut_before, cut_after=edge_cut(level.graph, part),
                    engine="mpi-interface",
                )
            )

        if k > 1 and imbalance(graph, part, k) > opts.ubfactor:
            pweights = np.bincount(
                part, weights=graph.vwgt.astype(np.float64), minlength=k
            )
            ideal = graph.total_vertex_weight / k
            rebalance_pass(graph, part, pweights, k, opts.ubfactor * ideal)

        finish_run(
            profiler,
            trace=trace,
            injector=injector,
            machine=self.machine,
            cut=edge_cut(graph, part),
            imbalance=imbalance(graph, part, k),
            num_ranks=opts.num_ranks,
        )
        extras = {"num_ranks": opts.num_ranks, "messages": mpi.messages_sent}
        if injector is not None:
            extras["degraded"] = injector.degraded
            extras["fault_events"] = list(injector.events)
        return PartitionResult(
            method=self.name,
            graph_name=graph.name,
            k=k,
            part=part,
            clock=clock,
            trace=trace,
            wall_seconds=time.perf_counter() - t0,
            extras=extras,
        )

"""Jostle's interface-region refinement (paper Sec. II.B).

"Each partition creates its own set of boundary vertices with the same
target partition preference, e.g. partition p constructs a set of its
boundary vertices with the preferred target partition q.  At the same
time, partition q creates a similar set of vertices for partition p.
Consequently, these two sets form an interface region.  A serial
optimization technique, e.g. KL, is executed independently on the
different regions.  This technique mitigates the communication-intensive
vertex movements by isolating different regions of the graph."

Adjacent partition pairs are scheduled in conflict-free rounds (a greedy
edge coloring of the partition-adjacency graph), so every region in a
round refines concurrently without sharing vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..serial.fm import fm_refine_bisection

__all__ = ["InterfaceRoundStats", "partition_pairs", "pair_rounds", "refine_interfaces"]


@dataclass
class InterfaceRoundStats:
    """One conflict-free round of pairwise interface refinements."""

    pairs: list
    region_sizes: list
    edge_scans: int
    moves: int


def partition_pairs(graph: CSRGraph, part: np.ndarray) -> list[tuple[int, int]]:
    """Adjacent partition pairs (p < q) sharing at least one cut edge."""
    src = graph.source_array()
    cut = part[src] != part[graph.adjncy]
    if not np.any(cut):
        return []
    a = part[src[cut]]
    b = part[graph.adjncy[cut]]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    key = np.unique(lo.astype(np.int64) * (int(part.max()) + 1) + hi)
    base = int(part.max()) + 1
    return [(int(kk // base), int(kk % base)) for kk in key]


def pair_rounds(pairs: list[tuple[int, int]]) -> list[list[tuple[int, int]]]:
    """Greedy conflict-free scheduling: no partition appears twice per round."""
    remaining = list(pairs)
    rounds: list[list[tuple[int, int]]] = []
    while remaining:
        used: set[int] = set()
        this_round: list[tuple[int, int]] = []
        rest: list[tuple[int, int]] = []
        for p, q in remaining:
            if p in used or q in used:
                rest.append((p, q))
            else:
                this_round.append((p, q))
                used.add(p)
                used.add(q)
        rounds.append(this_round)
        remaining = rest
    return rounds


def _interface_region(
    graph: CSRGraph, part: np.ndarray, p: int, q: int
) -> tuple[np.ndarray, np.ndarray]:
    """Movable core (p vertices adjacent to q and vice versa) and the
    full region (core + its one-hop same-pair halo).

    Returns ``(core, region)`` — the halo (region minus core) is pinned
    context during refinement.
    """
    src = graph.source_array()
    nbr_part = part[graph.adjncy]
    core_mask = np.zeros(graph.num_vertices, dtype=bool)
    sel = ((part[src] == p) & (nbr_part == q)) | ((part[src] == q) & (nbr_part == p))
    core_mask[src[sel]] = True
    core = np.where(core_mask)[0].astype(np.int64)
    if core.size == 0:
        return core, core
    lens = graph.adjp[core + 1] - graph.adjp[core]
    total = int(lens.sum())
    idx = np.repeat(graph.adjp[core], lens) + (
        np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
    )
    nbrs = graph.adjncy[idx]
    halo = nbrs[(part[nbrs] == p) | (part[nbrs] == q)]
    region = np.union1d(core, halo).astype(np.int64)
    return core, region


def refine_interfaces(
    graph: CSRGraph,
    part: np.ndarray,
    k: int,
    ubfactor: float,
    fm_passes: int = 2,
) -> tuple[np.ndarray, list[InterfaceRoundStats]]:
    """One sweep of pairwise KL/FM over all interface regions.

    The pair's two sides aim at the *global* ideal weight each (combined
    balancing: a region whose pair is jointly overweight sheds load to the
    side with headroom).  Mutates a copy of ``part``; returns it with the
    per-round statistics for the cost model.
    """
    part = np.asarray(part, dtype=np.int64).copy()
    ideal = graph.total_vertex_weight / k if k else 0.0
    stats_out: list[InterfaceRoundStats] = []
    pairs = partition_pairs(graph, part)
    for round_pairs in pair_rounds(pairs):
        region_sizes: list[int] = []
        edge_scans = 0
        moves = 0
        for p, q in round_pairs:
            core, region = _interface_region(graph, part, p, q)
            if region.size < 2:
                region_sizes.append(int(region.size))
                continue
            sub, _old_of_new = graph.subgraph(region)
            labels = (part[region] == q).astype(np.int64)
            # Halo vertices give the FM its context but must not move:
            # their edges to vertices outside the region are invisible
            # to the subgraph and would corrupt the global cut.
            core_mask = np.zeros(graph.num_vertices, dtype=bool)
            core_mask[core] = True
            pinned = ~core_mask[region]
            # Side caps: current region share plus whatever global
            # headroom the partition has under the tolerance.
            w_p = float(np.sum(graph.vwgt[part == p]))
            w_q = float(np.sum(graph.vwgt[part == q]))
            region_p = int(sub.vwgt[labels == 0].sum())
            region_q = int(sub.vwgt[labels == 1].sum())
            cap_p = region_p + max(0.0, ubfactor * ideal - w_p)
            cap_q = region_q + max(0.0, ubfactor * ideal - w_q)
            res = fm_refine_bisection(
                sub, labels, (int(round(cap_p)), int(round(cap_q))),
                ubfactor=1.0, max_passes=fm_passes, pinned=pinned,
            )
            changed = res.part != labels
            moves += int(changed.sum())
            new_labels = np.where(res.part == 1, q, p)
            part[region] = new_labels
            region_sizes.append(int(region.size))
            edge_scans += int(sub.num_directed_edges) * (1 + fm_passes)
        stats_out.append(
            InterfaceRoundStats(
                pairs=round_pairs, region_sizes=region_sizes,
                edge_scans=edge_scans, moves=moves,
            )
        )
    return part, stats_out

"""Asynchronous CUDA-style streams for the simulated device.

Real GP-metis implementations hide PCIe traffic behind kernel execution
with ``cudaMemcpyAsync`` on a copy stream while kernels run on a compute
stream.  This module gives the simulator the same vocabulary:

- :class:`Stream` — an in-order command queue.  Work enqueued on a
  stream occupies its own *track* on the shared :class:`SimClock`
  timeline, starting at ``max(track end, host now)``; concurrent streams
  therefore advance in parallel and wall time is the busy-union of the
  tracks (mirroring how ``ThreadPoolSim`` folds CPU threads), never the
  serial sum.
- :class:`Event` — a marker recorded on a stream.  Other streams
  :meth:`~Stream.wait` on it (``cudaStreamWaitEvent``) and the host
  :meth:`~Event.synchronize`\\ s on it, which advances the host cursor
  without charging anything — the waiting time is already covered by the
  producing stream's events.
- :func:`h2d_async` / :func:`d2h_async` — ``cudaMemcpyAsync``: the same
  alpha-beta PCIe model, fault sites and end-to-end corruption verify as
  the synchronous copies in :mod:`repro.gpusim.transfer`, but charged to
  the stream's track.  Injected faults fire *at enqueue time* in the
  same order as the serial schedule, so a fault plan that fails the
  third H2D copy fails it identically with overlap on or off; retries
  burn track time (the DMA engine backs off, the host does not block).

The simulation itself stays eager — data moves when the call is made —
only the *accounting* is deferred onto the track.  That keeps partition
vectors byte-identical between the overlapped and serial schedules,
which is exactly the differential oracle ``make overlap-smoke`` checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import TransferError
from ..faults.retry import RetryPolicy
from ..runtime.machine import InterconnectSpec
from .device import Device
from .memory import DeviceArray
from .transfer import _corrupt

__all__ = ["Event", "Stream", "h2d_async", "d2h_async"]


@dataclass(frozen=True)
class Event:
    """A point on a stream's timeline (``cudaEventRecord``)."""

    stream: "Stream"
    time: float

    def synchronize(self) -> None:
        """Block the host until the event completes (no charge: the wait
        is covered by the producing stream's own events)."""
        self.stream.device.clock.wait_until(self.time)


class Stream:
    """An in-order asynchronous command queue on a simulated device."""

    def __init__(self, device: Device, name: str):
        self.device = device
        self.name = name
        self.track = f"stream:{name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream({self.name!r}, cursor={self.cursor:.6f})"

    @property
    def cursor(self) -> float:
        """Where the next command enqueued on this stream would start."""
        return self.device.clock.track_end(self.track)

    def record(self) -> Event:
        """Record an event that completes with the work queued so far."""
        return Event(self, self.cursor)

    def wait(self, event: Event) -> None:
        """``cudaStreamWaitEvent``: later work on this stream starts no
        earlier than ``event`` (idle gap on the track, nothing charged)."""
        self.device.clock.advance_track(self.track, event.time)

    def synchronize(self) -> None:
        """``cudaStreamSynchronize``: fold this stream into wall time."""
        self.device.clock.sync_tracks([self.track])


# ----------------------------------------------------------------------
# Async copies: the transfer.py model, charged to a stream's track.


def _async_span(
    stream: Stream, direction: str, label: str, start: float, end: float, nbytes: int
) -> None:
    profiler = getattr(stream.device.clock, "profiler", None)
    if profiler is not None:
        profiler.add_span(
            f"{direction}.{label}" if label else direction,
            start,
            end,
            category="transfer",
            direction=direction,
            bytes=nbytes,
            stream=stream.name,
        )


def _fire_async_faults(stream: Stream, site: str, label: str, net: InterconnectSpec):
    """Async twin of ``transfer._fire_transfer_faults``: a hard failure
    burns the wire latency on the stream's track, then raises."""
    dev = stream.device
    injector = getattr(dev.clock, "injector", None)
    if injector is None:
        return None, []
    fired = injector.fire(site, label)
    for spec in fired:
        if spec.kind == "fail":
            dev.clock.charge_at(
                stream.track, "transfer_latency", net.pcie_latency_seconds,
                count=1.0, detail=f"{label} (failed)",
            )
            injector.raise_for(spec, label)
    return injector, fired


def _charge_async_copy(stream: Stream, nbytes: int, net: InterconnectSpec, label: str):
    """Charge one copy's alpha-beta cost to the track; returns its span."""
    clock = stream.device.clock
    seconds = net.pcie_seconds(nbytes)
    start, _ = clock.charge_at(
        stream.track, "transfer_latency", net.pcie_latency_seconds,
        count=1.0, detail=label,
    )
    _, end = clock.charge_at(
        stream.track, "transfer_bytes", seconds - net.pcie_latency_seconds,
        count=float(nbytes), detail=label,
    )
    return start, end


def _with_stream_retry(fn, stream: Stream, site: str, detail: str = ""):
    """Async analogue of :func:`repro.faults.with_retry`: the backoff and
    the failed attempts' wire time burn *track* time (the host is not
    blocked), and both are wrapped in ``retry``-category spans so
    critical-path attribution can move them out of the transfer bucket."""
    clock = stream.device.clock
    injector = getattr(clock, "injector", None)
    if injector is None:
        return fn()
    policy = RetryPolicy()
    attempt = 0
    while True:
        t0 = stream.cursor
        try:
            return fn()
        except TransferError as exc:
            if not injector.recover:
                raise
            attempt += 1
            if attempt > policy.max_retries:
                raise
            profiler = getattr(clock, "profiler", None)
            if profiler is not None:
                profiler.add_span(
                    f"retry {site} attempt", t0, stream.cursor,
                    category="retry", attempt=attempt,
                    max_retries=policy.max_retries, stream=stream.name,
                )
            bs, be = clock.charge_at(
                stream.track, "sync", policy.backoff(attempt), count=1.0,
                detail=f"retry backoff {site}" + (f" {detail}" if detail else ""),
            )
            if profiler is not None:
                profiler.add_span(
                    f"retry {site}", bs, be, category="retry",
                    attempt=attempt, max_retries=policy.max_retries,
                    stream=stream.name,
                )
            injector.record_recovery(
                site, "retry", f"attempt {attempt}/{policy.max_retries}: {exc}"
            )


def _h2d_async_once(
    stream: Stream, host: np.ndarray, net: InterconnectSpec, label: str
) -> DeviceArray:
    dev = stream.device
    injector, fired = _fire_async_faults(stream, "transfer.h2d", label, net)
    darr = dev.adopt(host.copy(), label=label)
    start, end = _charge_async_copy(stream, int(host.nbytes), net, label)
    dev.stats.h2d_transfers += 1
    dev.stats.h2d_bytes += int(host.nbytes)
    _async_span(stream, "h2d", label, start, end, int(host.nbytes))
    for spec in fired:
        if spec.kind == "corrupt":
            _corrupt(darr.data, [0xC0, injector.plan.seed, dev.stats.h2d_transfers])
    if fired and not np.array_equal(darr.data, host):
        darr.free()
        injector.raise_for(next(s for s in fired if s.kind == "corrupt"), label)
    return darr


def h2d_async(
    stream: Stream,
    host: np.ndarray,
    net: InterconnectSpec,
    label: str = "",
    after: tuple[Event, ...] = (),
) -> tuple[DeviceArray, Event]:
    """``cudaMemcpyAsync`` host->device on ``stream``.

    ``after`` events gate the copy (``cudaStreamWaitEvent`` first).
    Returns the device array plus an event that completes when the copy
    does; consumers on other streams wait on it before touching the
    array.  Transient injected faults retry on the track; the final
    error escapes at the enqueue call site, exactly where the serial
    schedule's would, so degradation ladders need no special casing.
    """
    for event in after:
        stream.wait(event)
    darr = _with_stream_retry(
        lambda: _h2d_async_once(stream, host, net, label),
        stream, "transfer.h2d", detail=label,
    )
    return darr, stream.record()


def _d2h_async_once(
    stream: Stream, darr: DeviceArray, net: InterconnectSpec, label: str
) -> np.ndarray:
    darr._require_live()
    dev = darr.device
    injector, fired = _fire_async_faults(stream, "transfer.d2h", label, net)
    start, end = _charge_async_copy(stream, int(darr.nbytes), net, label)
    dev.stats.d2h_transfers += 1
    dev.stats.d2h_bytes += int(darr.nbytes)
    _async_span(stream, "d2h", label, start, end, int(darr.nbytes))
    out = darr.data.copy()
    for spec in fired:
        if spec.kind == "corrupt":
            _corrupt(out, [0xD2, injector.plan.seed, dev.stats.d2h_transfers])
    if fired and not np.array_equal(out, darr.data):
        injector.raise_for(next(s for s in fired if s.kind == "corrupt"), label)
    return out


def d2h_async(
    stream: Stream,
    darr: DeviceArray,
    net: InterconnectSpec,
    label: str = "",
    after: tuple[Event, ...] = (),
) -> tuple[np.ndarray, Event]:
    """``cudaMemcpyAsync`` device->host on ``stream``; see
    :func:`h2d_async` for the fault/event contract.  The host must
    :meth:`~Event.synchronize` on the returned event before reading the
    buffer (the hybrid engine does, right before first use)."""
    for event in after:
        stream.wait(event)
    out = _with_stream_retry(
        lambda: _d2h_async_once(stream, darr, net, label),
        stream, "transfer.d2h", detail=label,
    )
    return out, stream.record()

"""Per-thread sort cost model (the contraction's sort-merge path).

In the paper's first adjacency-merge approach each GPU thread quicksorts
the concatenated neighbor lists of a collapsed vertex pair and removes
duplicates.  Per-thread quicksort on a GPU is sequential within the
thread, so its cost is ``L log2 L`` comparisons with L the merged list
length, and the threads of a warp diverge on unequal lengths — modeled
via the SIMT divergence rule.
"""

from __future__ import annotations

import numpy as np

from .device import KernelContext

__all__ = ["charge_thread_quicksort", "thread_sort_dedup"]


def charge_thread_quicksort(k: KernelContext, seg_lengths: np.ndarray) -> None:
    """Charge per-thread quicksorts of segments with the given lengths."""
    lens = np.asarray(seg_lengths, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        ops = np.where(lens > 1, lens * np.log2(np.maximum(lens, 2)), lens)
    k.compute_divergent(ops)


def thread_sort_dedup(values: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reference behaviour of one thread's sort + remove pass.

    Sorts ``values``, merges duplicates by summing their ``weights`` —
    the "quicksort followed by a remove function" of Sec. III.A.
    """
    if values.size == 0:
        return values.copy(), weights.copy()
    order = np.argsort(values, kind="stable")
    v = values[order]
    w = weights[order]
    keep = np.concatenate([[True], v[1:] != v[:-1]])
    group = np.cumsum(keep) - 1
    merged_w = np.zeros(int(group[-1]) + 1, dtype=w.dtype)
    np.add.at(merged_w, group, w)
    return v[keep], merged_w

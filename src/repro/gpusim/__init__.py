"""Simulated SIMT GPU: device memory, kernels, coalescing, scans, atomics,
and an opt-in data-race sanitizer with schedule fuzzing."""

from .atomics import atomic_add_scalar, atomic_append
from .device import Device, KernelContext
from .sanitizer import LaunchRaceReport, RaceFinding, RaceSanitizer
from .hashtable import ClusteredHashTable, charge_hash_merge, hash_table_bytes
from .memory import DeviceArray, stream_transactions, warp_transactions
from .reduce import device_count_nonzero, device_max, device_sum
from .scan import exclusive_scan, inclusive_scan
from .simt import divergence_factor, grid_for, threads_for_items, warp_divergent_ops
from .sort import charge_thread_quicksort, thread_sort_dedup
from .stats import DeviceStats, KernelStats
from .transfer import d2h, h2d, transfer_graph_to_device

__all__ = [
    "Device",
    "KernelContext",
    "RaceSanitizer",
    "RaceFinding",
    "LaunchRaceReport",
    "DeviceArray",
    "warp_transactions",
    "stream_transactions",
    "inclusive_scan",
    "exclusive_scan",
    "device_sum",
    "device_max",
    "device_count_nonzero",
    "atomic_append",
    "atomic_add_scalar",
    "ClusteredHashTable",
    "charge_hash_merge",
    "hash_table_bytes",
    "charge_thread_quicksort",
    "thread_sort_dedup",
    "warp_divergent_ops",
    "divergence_factor",
    "grid_for",
    "threads_for_items",
    "DeviceStats",
    "KernelStats",
    "d2h",
    "h2d",
    "transfer_graph_to_device",
]

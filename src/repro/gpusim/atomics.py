"""Atomic-operation helpers for lock-free device algorithms.

The paper's refinement (Sec. III.C) lets thousands of threads append
movement requests to per-partition buffers: "when one thread wants to put
a request on a specific buffer, it atomically increments the counter S by
one.  Thus, multiple threads are able to write to exclusive slots of the
buffer concurrently without resorting to locks."

``atomic_append`` reproduces that slot assignment deterministically
(thread order = arbitration order) and charges the atomic-contention
model: concurrent increments of the same counter serialise.
"""

from __future__ import annotations

import numpy as np

from .device import KernelContext

__all__ = ["atomic_append", "atomic_add_scalar"]


def atomic_append(
    k: KernelContext,
    buffer_ids: np.ndarray,
    num_buffers: int,
    d_counters=None,
) -> np.ndarray:
    """Assign each request an exclusive slot in its destination buffer.

    ``buffer_ids[i]`` is the buffer that request ``i`` (issued by logical
    thread ``i``) targets.  Returns ``slots`` such that requests targeting
    the same buffer receive 0, 1, 2, ... in thread order — the result of
    each thread's ``atomicAdd(&S[buf], 1)``.

    Passing the counter array ``d_counters`` applies the increments to it
    and lets the sanitizer record the RMWs as *atomic* accesses: many
    threads may hit one counter element without being flagged, which is
    exactly the lock-freedom claim of paper Sec. III.C.
    """
    ids = np.asarray(buffer_ids, dtype=np.int64)
    n = ids.shape[0]
    slots = np.zeros(n, dtype=np.int64)
    if n:
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        # Position within each run of equal buffer ids = slot number.
        run_start = np.concatenate([[True], sorted_ids[1:] != sorted_ids[:-1]])
        run_idx = np.cumsum(run_start) - 1
        first_pos = np.zeros(run_idx[-1] + 1, dtype=np.int64)
        first_pos[run_idx[run_start]] = np.where(run_start)[0]
        slots[order] = np.arange(n, dtype=np.int64) - first_pos[run_idx]
    distinct = int(np.unique(ids).shape[0]) if n else 0
    if d_counters is not None:
        d_counters._require_live()
        k.atomic(n, distinct_targets=distinct, darr=d_counters, targets=ids)
        if n:
            d_counters.data[: min(num_buffers, d_counters.size)] += np.bincount(
                ids, minlength=num_buffers
            )[: d_counters.size]
    else:
        k.atomic(n, distinct_targets=distinct)
    return slots


def atomic_add_scalar(k: KernelContext, n_ops: int) -> None:
    """n_ops atomicAdds all hitting one address (worst-case contention)."""
    k.atomic(int(n_ops), distinct_targets=1)

"""Clustered (chained) hash table for the contraction's hash-merge path.

Paper Sec. III.A, second approach: "we use a hash table for each thread.
... to avoid collisions, chaining is used where each bucket of the hash
table stores multiple elements, i.e. a clustered hash table.  The hash
table approach is faster than the sorting, but it is applicable only when
the graph is sparse so that the hash table is not too large to fit inside
the GPU memory."

:class:`ClusteredHashTable` is a real open-hashing implementation with
per-bucket chains, used directly by the ``hash`` merge implementation and
exercised by tests; ``charge_hash_merge`` is the cost model applied when
the vectorised fast path computes the same result.
"""

from __future__ import annotations

import numpy as np

from .device import KernelContext

__all__ = ["ClusteredHashTable", "charge_hash_merge", "hash_table_bytes"]

_EMPTY = -1


class ClusteredHashTable:
    """Integer-key -> integer-value table with chained buckets.

    Keys are vertex ids; values accumulate edge weights
    (``insert_or_add``).  Bucket index is ``key % capacity`` (the paper's
    space-reducing hash function); chains are per-bucket Python lists of
    (key, value) pairs held in parallel arrays for cheap iteration.
    """

    __slots__ = ("capacity", "bucket_keys", "bucket_vals", "probes", "collisions", "entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("hash table capacity must be >= 1")
        self.capacity = capacity
        self.bucket_keys: list[list[int]] = [[] for _ in range(capacity)]
        self.bucket_vals: list[list[int]] = [[] for _ in range(capacity)]
        self.probes = 0
        self.collisions = 0
        self.entries = 0

    def insert_or_add(self, key: int, value: int) -> None:
        """Add ``value`` to ``key``'s entry, creating it if absent."""
        b = key % self.capacity
        keys = self.bucket_keys[b]
        self.probes += 1
        for i, k in enumerate(keys):
            self.probes += 1
            if k == key:
                self.bucket_vals[b][i] += value
                return
        if keys:
            self.collisions += 1
        keys.append(key)
        self.bucket_vals[b].append(value)
        self.entries += 1

    def get(self, key: int) -> int | None:
        b = key % self.capacity
        for i, k in enumerate(self.bucket_keys[b]):
            if k == key:
                return self.bucket_vals[b][i]
        return None

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All (key, value) pairs, sorted by key, as arrays."""
        ks: list[int] = []
        vs: list[int] = []
        for bk, bv in zip(self.bucket_keys, self.bucket_vals):
            ks.extend(bk)
            vs.extend(bv)
        keys = np.asarray(ks, dtype=np.int64)
        vals = np.asarray(vs, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        return keys[order], vals[order]

    def clear(self) -> None:
        for b in range(self.capacity):
            self.bucket_keys[b].clear()
            self.bucket_vals[b].clear()
        self.entries = 0


def hash_table_bytes(num_coarse_vertices: int, n_threads: int, slot_bytes: int = 16) -> int:
    """Device footprint of per-thread hash tables.

    Ideal capacity per table "should be equal to the number of vertices in
    the coarser graph" (Sec. III.A); each slot stores a key, a value, and a
    chain pointer.
    """
    return int(num_coarse_vertices) * int(n_threads) * slot_bytes


def charge_hash_merge(k: KernelContext, seg_lengths: np.ndarray, chain_factor: float = 1.3) -> None:
    """Charge hash-based merges of segments with the given lengths.

    Each element costs one hash + one expected-O(1 + chain) probe; the
    chain factor reflects clustering.  Unequal lengths diverge per SIMT.
    """
    lens = np.asarray(seg_lengths, dtype=np.float64)
    k.compute_divergent(lens * (1.0 + chain_factor))

"""PCIe transfers between host and the simulated device.

The paper counts CPU<->GPU transfer time in GP-metis's runtime (Table II
note: "this time includes the time to transfer the graph between CPU and
the GPU"), and its central design point is *avoiding* most transfers by
keeping the fine levels on the GPU.  Transfers use the interconnect's
alpha-beta model.

When a :class:`~repro.faults.FaultInjector` rides the device clock, each
copy becomes a *reliable* transfer: injected failures and corruptions
(caught by an end-to-end verify of the copied buffer against its source)
raise :class:`~repro.exceptions.TransferError`, and the copy is retried
under the standard backoff policy before the error escapes to the
engine's degradation ladder.  Without an injector the fast path is
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import TransferError
from ..faults.retry import with_retry
from ..runtime.machine import InterconnectSpec
from .device import Device
from .memory import DeviceArray

__all__ = ["h2d", "d2h", "transfer_graph_to_device"]


def _transfer_span(dev: Device, direction: str, label: str, t_start: float, nbytes: int) -> None:
    """Emit one PCIe-transfer span when a profiler observes the clock."""
    profiler = getattr(dev.clock, "profiler", None)
    if profiler is not None:
        profiler.add_span(
            f"{direction}.{label}" if label else direction,
            t_start,
            dev.clock.total_seconds,
            category="transfer",
            direction=direction,
            bytes=nbytes,
        )


def _corrupt(buf: np.ndarray, seed_parts) -> None:
    """Flip one element of the copied buffer, deterministically."""
    flat = buf.reshape(-1)
    if flat.size == 0:
        return
    idx = int(np.random.default_rng(seed_parts).integers(flat.size))
    flat[idx] = ~flat[idx] if np.issubdtype(flat.dtype, np.integer) else -flat[idx] - 1


def _fire_transfer_faults(dev: Device, site: str, label: str, net: InterconnectSpec):
    """(injector, fired specs) for one copy attempt; hard failures raise
    after burning the wire latency (the DMA engine started, then died)."""
    injector = getattr(dev.clock, "injector", None)
    if injector is None:
        return None, []
    fired = injector.fire(site, label)
    for spec in fired:
        if spec.kind == "fail":
            dev.clock.charge(
                "transfer_latency", net.pcie_latency_seconds, count=1.0,
                detail=f"{label} (failed)",
            )
            injector.raise_for(spec, label)
    return injector, fired


def _h2d_once(
    dev: Device, host: np.ndarray, net: InterconnectSpec, label: str
) -> DeviceArray:
    injector, fired = _fire_transfer_faults(dev, "transfer.h2d", label, net)
    darr = dev.adopt(host.copy(), label=label)
    seconds = net.pcie_seconds(host.nbytes)
    t_start = dev.clock.total_seconds
    dev.clock.charge("transfer_latency", net.pcie_latency_seconds, count=1.0, detail=label)
    dev.clock.charge(
        "transfer_bytes", seconds - net.pcie_latency_seconds,
        count=float(host.nbytes), detail=label,
    )
    dev.stats.h2d_transfers += 1
    dev.stats.h2d_bytes += int(host.nbytes)
    _transfer_span(dev, "h2d", label, t_start, int(host.nbytes))
    for spec in fired:
        if spec.kind == "corrupt":
            _corrupt(darr.data, [0xC0, injector.plan.seed, dev.stats.h2d_transfers])
    if fired and not np.array_equal(darr.data, host):
        # End-to-end verify caught the corruption: release the garbage
        # allocation and surface it as a failed (retryable) copy.
        darr.free()
        injector.raise_for(next(s for s in fired if s.kind == "corrupt"), label)
    return darr


def h2d(
    dev: Device, host: np.ndarray, net: InterconnectSpec, label: str = ""
) -> DeviceArray:
    """cudaMemcpy host->device: allocates and charges the PCIe model.

    Transient injected faults are retried with backoff; the final error
    (or a device OOM, which retrying cannot fix) propagates.
    """
    return with_retry(
        lambda: _h2d_once(dev, host, net, label),
        dev.clock, "transfer.h2d", retryable=(TransferError,), detail=label,
    )


def _d2h_once(darr: DeviceArray, net: InterconnectSpec, label: str) -> np.ndarray:
    darr._require_live()
    dev = darr.device
    injector, fired = _fire_transfer_faults(dev, "transfer.d2h", label, net)
    seconds = net.pcie_seconds(darr.nbytes)
    t_start = dev.clock.total_seconds
    dev.clock.charge("transfer_latency", net.pcie_latency_seconds, count=1.0, detail=label)
    dev.clock.charge(
        "transfer_bytes", seconds - net.pcie_latency_seconds,
        count=float(darr.nbytes), detail=label,
    )
    dev.stats.d2h_transfers += 1
    dev.stats.d2h_bytes += int(darr.nbytes)
    _transfer_span(dev, "d2h", label, t_start, int(darr.nbytes))
    out = darr.data.copy()
    for spec in fired:
        if spec.kind == "corrupt":
            _corrupt(out, [0xD2, injector.plan.seed, dev.stats.d2h_transfers])
    if fired and not np.array_equal(out, darr.data):
        injector.raise_for(next(s for s in fired if s.kind == "corrupt"), label)
    return out


def d2h(darr: DeviceArray, net: InterconnectSpec, label: str = "") -> np.ndarray:
    """cudaMemcpy device->host; device allocation stays live until freed."""
    return with_retry(
        lambda: _d2h_once(darr, net, label),
        darr.device.clock, "transfer.d2h", retryable=(TransferError,), detail=label,
    )


def transfer_graph_to_device(dev: Device, graph, net: InterconnectSpec) -> dict:
    """Copy the four CSR arrays of a graph to the device (paper Sec. III:
    "Initially, the graph information is copied to the GPU's global
    memory")."""
    return {
        "adjp": h2d(dev, graph.adjp, net, label="csr.adjp"),
        "adjncy": h2d(dev, graph.adjncy, net, label="csr.adjncy"),
        "adjwgt": h2d(dev, graph.adjwgt, net, label="csr.adjwgt"),
        "vwgt": h2d(dev, graph.vwgt, net, label="csr.vwgt"),
    }

"""PCIe transfers between host and the simulated device.

The paper counts CPU<->GPU transfer time in GP-metis's runtime (Table II
note: "this time includes the time to transfer the graph between CPU and
the GPU"), and its central design point is *avoiding* most transfers by
keeping the fine levels on the GPU.  Transfers use the interconnect's
alpha-beta model.
"""

from __future__ import annotations

import numpy as np

from ..runtime.machine import InterconnectSpec
from .device import Device
from .memory import DeviceArray

__all__ = ["h2d", "d2h", "transfer_graph_to_device"]


def _transfer_span(dev: Device, direction: str, label: str, t_start: float, nbytes: int) -> None:
    """Emit one PCIe-transfer span when a profiler observes the clock."""
    profiler = getattr(dev.clock, "profiler", None)
    if profiler is not None:
        profiler.add_span(
            f"{direction}.{label}" if label else direction,
            t_start,
            dev.clock.total_seconds,
            category="transfer",
            direction=direction,
            bytes=nbytes,
        )


def h2d(
    dev: Device, host: np.ndarray, net: InterconnectSpec, label: str = ""
) -> DeviceArray:
    """cudaMemcpy host->device: allocates and charges the PCIe model."""
    darr = dev.adopt(host.copy(), label=label)
    seconds = net.pcie_seconds(host.nbytes)
    t_start = dev.clock.total_seconds
    dev.clock.charge("transfer_latency", net.pcie_latency_seconds, count=1.0, detail=label)
    dev.clock.charge(
        "transfer_bytes", seconds - net.pcie_latency_seconds,
        count=float(host.nbytes), detail=label,
    )
    dev.stats.h2d_transfers += 1
    dev.stats.h2d_bytes += int(host.nbytes)
    _transfer_span(dev, "h2d", label, t_start, int(host.nbytes))
    return darr


def d2h(darr: DeviceArray, net: InterconnectSpec, label: str = "") -> np.ndarray:
    """cudaMemcpy device->host; device allocation stays live until freed."""
    darr._require_live()
    dev = darr.device
    seconds = net.pcie_seconds(darr.nbytes)
    t_start = dev.clock.total_seconds
    dev.clock.charge("transfer_latency", net.pcie_latency_seconds, count=1.0, detail=label)
    dev.clock.charge(
        "transfer_bytes", seconds - net.pcie_latency_seconds,
        count=float(darr.nbytes), detail=label,
    )
    dev.stats.d2h_transfers += 1
    dev.stats.d2h_bytes += int(darr.nbytes)
    _transfer_span(dev, "d2h", label, t_start, int(darr.nbytes))
    return darr.data.copy()


def transfer_graph_to_device(dev: Device, graph, net: InterconnectSpec) -> dict:
    """Copy the four CSR arrays of a graph to the device (paper Sec. III:
    "Initially, the graph information is copied to the GPU's global
    memory")."""
    return {
        "adjp": h2d(dev, graph.adjp, net, label="csr.adjp"),
        "adjncy": h2d(dev, graph.adjncy, net, label="csr.adjncy"),
        "adjwgt": h2d(dev, graph.adjwgt, net, label="csr.adjwgt"),
        "vwgt": h2d(dev, graph.vwgt, net, label="csr.vwgt"),
    }

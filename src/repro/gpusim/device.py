"""The simulated CUDA device: memory manager and kernel launcher.

``Device`` owns a capacity-limited global memory (allocations fail with
:class:`DeviceMemoryError` when the GTX Titan's 6 GB would be exceeded —
the constraint paper Sec. III calls out), a :class:`SimClock` to charge
time against, and per-kernel statistics.

Kernels are written as context managers::

    with dev.kernel("coarsen.match", n_threads=nt) as k:
        k.gather(d_adjncy, idx)          # irregular read
        k.stream_read(d_match)           # coalesced sweep
        k.scatter(d_match, vs)           # irregular write
        k.compute(per_thread_ops)        # SIMT compute, divergence-aware

On exit, the launch charges ``launch_overhead + max(memory_time,
compute_time) + atomic_time`` — the standard roofline view of a
memory-bound CUDA kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import DeviceMemoryError, KernelLaunchError
from ..runtime.clock import SimClock
from ..runtime.machine import GpuSpec
from .memory import DeviceArray, stream_transactions, warp_transactions
from .simt import warp_divergent_ops
from .stats import DeviceStats

__all__ = ["Device", "KernelContext"]


@dataclass
class Device:
    """One simulated CUDA GPU."""

    spec: GpuSpec
    clock: SimClock
    stats: DeviceStats = field(default_factory=DeviceStats)
    allocated_bytes: int = 0
    #: Opt-in data-race sanitizer (see :mod:`repro.gpusim.sanitizer`).
    #: ``None`` disables all access recording — the default fast path.
    sanitizer: object | None = None
    #: When set (a :class:`~repro.gpusim.streams.Stream`), kernels
    #: launched without an explicit ``stream=`` argument enqueue on it —
    #: the CUDA default-stream idiom, so engine code can route every
    #: kernel of a region onto a compute stream without threading a
    #: parameter through each kernel helper.
    default_stream: object | None = None

    def stream(self, name: str):
        """Create a named asynchronous stream on this device."""
        from .streams import Stream

        return Stream(self, name)

    def enable_sanitizer(self, fuzz_schedules: int = 3, seed: int = 0, **kwargs):
        """Attach a :class:`~repro.gpusim.sanitizer.RaceSanitizer`.

        Every subsequent kernel launch records per-thread read/write sets,
        is checked for conflicting non-atomic accesses, and has its writes
        replayed under ``fuzz_schedules`` adversarial thread orderings.
        Returns the sanitizer so callers can inspect ``.reports``.
        """
        from .sanitizer import RaceSanitizer

        self.sanitizer = RaceSanitizer(
            fuzz_schedules=fuzz_schedules,
            seed=seed,
            warp_size=self.spec.warp_size,
            **kwargs,
        )
        return self.sanitizer

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def alloc(self, shape, dtype=np.int64, label: str = "") -> DeviceArray:
        """cudaMalloc: zero-initialised device array."""
        arr = np.zeros(shape, dtype=dtype)
        return self._register(arr, label)

    def alloc_like(self, host: np.ndarray, label: str = "") -> DeviceArray:
        return self.alloc(host.shape, host.dtype, label)

    def adopt(self, host: np.ndarray, label: str = "") -> DeviceArray:
        """Place an existing host buffer in device memory *without* a PCIe
        transfer charge — used for device-resident intermediates."""
        return self._register(host, label)

    def _register(self, arr: np.ndarray, label: str) -> DeviceArray:
        nbytes = int(arr.nbytes)
        capacity = self.spec.memory_bytes
        injector = getattr(self.clock, "injector", None)
        if injector is not None:
            # A capacity squeeze shrinks usable memory for the whole run;
            # an alloc fault fails this one cudaMalloc outright.
            capacity = injector.capacity_bytes(capacity)
            for spec in injector.fire("gpu.alloc", label):
                injector.raise_for(spec, label)
        if self.allocated_bytes + nbytes > capacity:
            raise DeviceMemoryError(
                f"device OOM allocating {nbytes} B for {label!r}: "
                f"{self.allocated_bytes} B in use of {capacity} B"
            )
        self.allocated_bytes += nbytes
        self.stats.peak_memory_bytes = max(self.stats.peak_memory_bytes, self.allocated_bytes)
        return DeviceArray(arr, self, label)

    def _release(self, darr: DeviceArray) -> None:
        self.allocated_bytes -= darr.nbytes

    @property
    def free_bytes(self) -> int:
        return self.spec.memory_bytes - self.allocated_bytes

    # ------------------------------------------------------------------
    # Kernel launching
    # ------------------------------------------------------------------
    def kernel(self, name: str, n_threads: int, stream=None) -> "KernelContext":
        if n_threads < 1:
            raise KernelLaunchError(f"kernel {name!r} launched with {n_threads} threads")
        return KernelContext(self, name, int(n_threads), stream=stream)


class KernelContext:
    """Accumulates one kernel launch's memory/compute/atomic work."""

    def __init__(self, device: Device, name: str, n_threads: int, stream=None) -> None:
        self.device = device
        self.name = name
        self.n_threads = n_threads
        #: The stream this launch enqueues on: the explicit argument, the
        #: device's default stream, or ``None`` for the legacy synchronous
        #: timeline (charges land on the host cursor).
        self.stream = stream if stream is not None else device.default_stream
        self._transactions = 0.0
        #: Transactions beyond the perfectly-coalesced minimum: these are
        #: random DRAM accesses and pay the (lower) gather bandwidth.
        self._random_transactions = 0.0
        #: Random transactions into arrays that fit the L2 cache: they
        #: avoid DRAM and pay the (intermediate) cached-gather bandwidth.
        self._cached_transactions = 0.0
        self._bytes_requested = 0.0
        self._compute_ops = 0.0
        self._atomic_ops = 0.0
        self._atomic_conflicts = 0.0
        self._entered = False
        self._san = device.sanitizer
        self._accesses: list | None = [] if self._san is not None else None
        self._seq = 0
        self._epoch = 0

    def grid_sync(self) -> None:
        """A device-wide barrier *inside* the kernel (cooperative-groups
        ``grid.sync()``), used by fused kernels: accesses after the
        barrier cannot race with accesses before it, so the sanitizer
        analyzes each epoch independently.  The barrier itself is free in
        the cost model — fusing trades it against a whole kernel launch."""
        self._epoch += 1

    # -- context protocol ------------------------------------------------
    def __enter__(self) -> "KernelContext":
        injector = getattr(self.device.clock, "injector", None)
        if injector is not None:
            # Faulted launches abort before any work lands, so device
            # arrays never hold a half-executed kernel's writes; a
            # timeout burns its watchdog interval first.
            for spec in injector.fire("kernel.launch", self.name):
                if spec.kind == "timeout":
                    self.device.clock.charge(
                        "launch", spec.seconds, count=1.0,
                        detail=f"{self.name} (watchdog timeout)",
                    )
                injector.raise_for(spec, self.name)
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._commit()

    # -- sanitizer recording ----------------------------------------------
    def _record(
        self,
        darr: DeviceArray,
        elements: np.ndarray,
        kind: str,
        values=None,
        threads: np.ndarray | None = None,
    ) -> None:
        """Log one access batch for the race sanitizer (sanitize mode only).

        ``threads`` names the logical owning thread of each access;
        without it the Fig. 2 layout applies (access ``i`` -> thread
        ``i % n_threads``).
        """
        if self._accesses is None:
            return
        from .sanitizer import AccessRecord

        elems = np.asarray(elements, dtype=np.int64).ravel()
        if threads is None:
            thr = np.arange(elems.shape[0], dtype=np.int64) % self.n_threads
        else:
            thr = np.asarray(threads, dtype=np.int64).ravel() % self.n_threads
        vals = None
        if values is not None:
            vals = np.broadcast_to(
                np.asarray(values, dtype=darr.dtype), elems.shape
            ).ravel()
        self._accesses.append(
            AccessRecord(
                darr.uid, darr.label, elems, thr, kind, vals, self._seq, self._epoch
            )
        )
        self._seq += 1

    # -- access recording -------------------------------------------------
    def _account_indexed(self, darr: DeviceArray, idx: np.ndarray) -> None:
        spec = self.device.spec
        txns = warp_transactions(idx, darr.itemsize, spec.warp_size, spec.transaction_bytes)
        nbytes = idx.size * darr.itemsize
        # A perfectly coalesced indexed access behaves like a stream; only
        # the transactions *beyond* that minimum are random traffic —
        # served from L2 when the whole array fits, from DRAM otherwise.
        ideal = stream_transactions(nbytes, spec.transaction_bytes)
        self._transactions += txns
        excess = max(0.0, txns - ideal)
        if darr.nbytes <= spec.l2_bytes:
            self._cached_transactions += excess
        else:
            self._random_transactions += excess
        self._bytes_requested += nbytes

    def gather(
        self,
        darr: DeviceArray,
        indices: np.ndarray,
        threads: np.ndarray | None = None,
    ) -> np.ndarray:
        """Warp-ordered irregular read; returns the gathered values."""
        darr._require_live()
        idx = np.asarray(indices, dtype=np.int64)
        self._account_indexed(darr, idx)
        self._record(darr, idx, "read", threads=threads)
        return darr.data[idx]

    def scatter(
        self,
        darr: DeviceArray,
        indices: np.ndarray,
        values,
        threads: np.ndarray | None = None,
    ) -> None:
        """Warp-ordered irregular write (duplicate indices: last writer wins)."""
        darr._require_live()
        idx = np.asarray(indices, dtype=np.int64)
        self._account_indexed(darr, idx)
        self._record(darr, idx, "write", values=values, threads=threads)
        darr.data[idx] = values

    def stream_read(self, darr: DeviceArray, n_elements: int | None = None) -> np.ndarray:
        """Fully coalesced sequential read of the array (or a prefix)."""
        darr._require_live()
        n = darr.size if n_elements is None else int(n_elements)
        nbytes = n * darr.itemsize
        self._transactions += stream_transactions(nbytes, self.device.spec.transaction_bytes)
        self._bytes_requested += nbytes
        if self._accesses is not None:
            self._record(darr, np.arange(n, dtype=np.int64), "read")
        return darr.data[:n] if n_elements is not None else darr.data

    def stream_write(self, darr: DeviceArray, values, n_elements: int | None = None) -> None:
        """Fully coalesced sequential write."""
        darr._require_live()
        n = darr.size if n_elements is None else int(n_elements)
        nbytes = n * darr.itemsize
        self._transactions += stream_transactions(nbytes, self.device.spec.transaction_bytes)
        self._bytes_requested += nbytes
        if self._accesses is not None:
            self._record(darr, np.arange(n, dtype=np.int64), "write", values=values)
        if n_elements is None:
            darr.data[...] = values
        else:
            darr.data[:n] = values

    def compute(self, ops: float) -> None:
        """Uniform arithmetic work (total simple ops across all threads)."""
        self._compute_ops += float(ops)

    def compute_divergent(self, per_thread_ops: np.ndarray) -> None:
        """SIMT compute where threads of a warp do unequal work.

        Charged at the warp-synchronous rate: each warp costs
        ``warp_size x max(ops of its threads)`` — the paper's workload-
        imbalance penalty for irregular graphs.
        """
        self._compute_ops += warp_divergent_ops(
            np.asarray(per_thread_ops, dtype=np.float64), self.device.spec.warp_size
        )

    def atomic(
        self,
        n_ops: int,
        distinct_targets: int | None = None,
        darr: DeviceArray | None = None,
        targets: np.ndarray | None = None,
        threads: np.ndarray | None = None,
    ) -> None:
        """n_ops atomic RMWs; contention modeled from target multiplicity.

        ``darr``/``targets`` optionally name the counter array and the
        element each RMW hits so the sanitizer can prove the accesses
        atomic (atomic adds commute — concurrent same-element RMWs are
        race-free by construction, unlike plain stores).
        """
        n_ops = int(n_ops)
        if darr is not None and targets is not None:
            self._record(darr, targets, "atomic", threads=threads)
        self._atomic_ops += n_ops
        if distinct_targets is not None and distinct_targets > 0 and n_ops > distinct_targets:
            # Ops beyond one-per-target serialise on the memory controller.
            self._atomic_conflicts += n_ops - distinct_targets

    # -- commit ------------------------------------------------------------
    def _commit(self) -> None:
        spec = self.device.spec
        stream = self.stream
        clock = self.device.clock
        if stream is None:
            t_start = clock.total_seconds
            charge = clock.charge
        else:
            # Async launch: the kernel occupies the stream's track from its
            # enqueue point; the host cursor does not advance.
            t_start = stream.cursor

            def charge(category, seconds, count=0.0, detail=""):
                clock.charge_at(
                    stream.track, category, seconds, count=count, detail=detail
                )

        streamed = (
            self._transactions - self._random_transactions - self._cached_transactions
        )
        occupancy = spec.occupancy(self.n_threads)
        mem_t = (
            spec.transaction_seconds(streamed)
            + spec.gather_transaction_seconds(self._random_transactions)
            + spec.cached_gather_transaction_seconds(self._cached_transactions)
        ) / occupancy
        cmp_t = spec.compute_seconds(self._compute_ops) / occupancy
        atomic_t = (
            self._atomic_ops * spec.atomic_seconds
            + self._atomic_conflicts * spec.atomic_contention_seconds
        )
        body = max(mem_t, cmp_t) + atomic_t
        total = spec.kernel_launch_seconds + body

        charge("launch", spec.kernel_launch_seconds, count=1.0, detail=self.name)
        if body > 0:
            if mem_t >= cmp_t:
                charge("memory", mem_t, count=self._transactions, detail=self.name)
                if atomic_t:
                    charge("atomic", atomic_t, count=self._atomic_ops, detail=self.name)
            else:
                charge("compute", cmp_t, count=self._compute_ops, detail=self.name)
                if atomic_t:
                    charge("atomic", atomic_t, count=self._atomic_ops, detail=self.name)

        if self._san is not None:
            self._san.analyze_launch(self.name, self.n_threads, self._accesses)

        k = self.device.stats.kernel(self.name)
        k.launches += 1
        k.threads_launched += self.n_threads
        k.memory_transactions += self._transactions
        k.random_transactions += self._random_transactions
        k.cached_transactions += self._cached_transactions
        k.bytes_requested += self._bytes_requested
        k.compute_ops += self._compute_ops
        k.atomic_ops += self._atomic_ops
        k.atomic_conflicts += self._atomic_conflicts
        k.seconds += total
        k.mem_seconds += mem_t
        k.compute_seconds += cmp_t
        k.atomic_seconds += atomic_t
        k.launch_seconds += spec.kernel_launch_seconds
        k.transaction_bytes = spec.transaction_bytes

        if spec.kernel_launch_seconds >= body:
            launch_bound = "latency"
        elif atomic_t > max(mem_t, cmp_t):
            launch_bound = "atomic"
        elif mem_t >= cmp_t:
            launch_bound = "dram-bandwidth"
        else:
            launch_bound = "compute"

        profiler = getattr(clock, "profiler", None)
        if profiler is not None:
            moved = self._transactions * spec.transaction_bytes
            coalescing = (
                min(1.0, self._bytes_requested / moved) if moved
                else (1.0 if self._bytes_requested <= 0.0 else 0.0)
            )
            extra = {} if stream is None else {"stream": stream.name}
            profiler.add_span(
                self.name,
                t_start,
                clock.total_seconds if stream is None else stream.cursor,
                category="kernel",
                threads=self.n_threads,
                transactions=self._transactions,
                bytes_requested=self._bytes_requested,
                coalescing=coalescing,
                compute_ops=self._compute_ops,
                atomic_ops=self._atomic_ops,
                bound=launch_bound,
                **extra,
            )

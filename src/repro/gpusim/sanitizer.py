"""Data-race / atomicity sanitizer for the simulated GPU.

The paper's correctness story rests on *lock-free* kernels: two-round
matching (claim, then resolve non-reciprocated claims) and refinement
request buffers filled through ``atomicAdd`` counters.  A kernel that
silently relies on a lucky thread interleaving would still produce a
plausible partition, so nothing short of access-level checking can tell
"lock-free by design" from "racy by luck".  This module adds that check
to ``gpusim`` as an opt-in mode (``Device.enable_sanitizer``):

* **Read/write-set recording** — every ``gather``/``scatter``/
  ``stream_read``/``stream_write``/``atomic`` issued inside a kernel
  launch records which *logical thread* touched which *element* of which
  :class:`~repro.gpusim.memory.DeviceArray` (and, for writes, the value
  committed).  Kernels may pass an explicit ``threads=`` ownership array;
  the default is the Fig. 2 layout (access ``i`` belongs to thread
  ``i % n_threads``).

* **Static conflict detection** — per launch and per array, accesses to
  the same element from different threads are classified:

  - ``write-write`` (**race**): two threads' final writes to one element
    disagree in value — the committed state depends on hardware
    arbitration.
  - ``atomic-mix`` (**race**): an element is updated both atomically and
    with a plain store — the plain store can tear the RMW.
  - ``stale-read`` (*warning*): a thread reads an element another thread
    writes in the same launch.  Under the simulator's lockstep semantics
    (reads see the pre-launch snapshot) this is well defined; it is
    exactly the staleness the two-round matching scheme tolerates, so it
    is reported but does not fail a launch.
  - ``silent-store`` (*benign*): several threads write the same value
    (e.g. the symmetric ``M[v]=u`` / ``M[u]=v`` pair writes of a
    conflict-free matching).

* **Schedule fuzzing** — the launch's recorded writes are replayed under
  seeded adversarial thread orderings (reverse thread ids, warp-shuffled,
  random permutations) and the final per-element state of each replay is
  compared against the committed state.  Any element whose value depends
  on the ordering is a ``schedule-divergence`` **race**: the kernel's
  committed result is not interleaving-independent.

The sanitizer never alters kernel results or modeled time; it only
observes.  Atomic accesses are exempt from replay because atomic adds
commute — which is precisely the property the paper's request buffers
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AccessRecord",
    "RaceFinding",
    "LaunchRaceReport",
    "RaceSanitizer",
    "RACE_KINDS",
    "WARNING_KINDS",
    "BENIGN_KINDS",
]

#: Finding kinds that fail a launch (non-deterministic or torn state).
RACE_KINDS = ("write-write", "atomic-mix", "schedule-divergence")
#: Tolerated-by-design hazards, reported for visibility.
WARNING_KINDS = ("stale-read",)
#: Redundant but harmless concurrent accesses.
BENIGN_KINDS = ("silent-store",)


@dataclass(frozen=True)
class AccessRecord:
    """One instrumented access batch inside a kernel launch."""

    array_uid: int
    label: str
    elements: np.ndarray
    threads: np.ndarray
    kind: str  # "read" | "write" | "atomic"
    values: np.ndarray | None
    seq: int  # program-order sequence number within the launch
    #: Barrier epoch within the launch: a fused kernel's ``grid_sync()``
    #: increments it, and accesses in different epochs are ordered by the
    #: barrier — they cannot race, so each epoch is analyzed on its own.
    epoch: int = 0


@dataclass(frozen=True)
class RaceFinding:
    """One flagged element of one array in one launch."""

    kind: str
    severity: str  # "race" | "warning" | "benign"
    array_label: str
    element: int
    threads: tuple[int, ...] = ()
    detail: str = ""

    def render(self) -> str:
        t = ",".join(str(x) for x in self.threads) or "?"
        msg = f"{self.severity}:{self.kind} {self.array_label}[{self.element}] threads={{{t}}}"
        return f"{msg} {self.detail}" if self.detail else msg


@dataclass
class LaunchRaceReport:
    """Per-launch race report (the unit surfaced in Trace / CLI)."""

    kernel: str
    launch_index: int
    n_threads: int
    schedules_checked: int
    schedule_names: tuple[str, ...] = ()
    #: Full per-kind finding counts (findings list below may be truncated).
    counts: dict = field(default_factory=dict)
    findings: list = field(default_factory=list)
    arrays_checked: int = 0
    accesses_checked: int = 0

    @property
    def num_races(self) -> int:
        return sum(self.counts.get(k, 0) for k in RACE_KINDS)

    @property
    def num_warnings(self) -> int:
        return sum(self.counts.get(k, 0) for k in WARNING_KINDS)

    @property
    def num_benign(self) -> int:
        return sum(self.counts.get(k, 0) for k in BENIGN_KINDS)

    @property
    def race_free(self) -> bool:
        return self.num_races == 0

    def render(self) -> str:
        head = (
            f"launch {self.launch_index} {self.kernel} "
            f"(threads={self.n_threads}, schedules={self.schedules_checked}): "
            f"{self.num_races} race(s), {self.num_warnings} stale-read(s), "
            f"{self.num_benign} benign"
        )
        lines = [head]
        for f in self.findings:
            lines.append(f"  {f.render()}")
        shown = len(self.findings)
        total = sum(self.counts.values())
        if total > shown:
            lines.append(f"  ... and {total - shown} more finding(s)")
        return "\n".join(lines)


def _per_thread_final_writes(elem, thr, val, seq, pos):
    """Reduce raw writes to each (element, thread)'s last-written value."""
    order = np.lexsort((pos, seq, thr, elem))
    e, t, v = elem[order], thr[order], val[order]
    group_end = np.ones(e.shape[0], dtype=bool)
    group_end[:-1] = (e[1:] != e[:-1]) | (t[1:] != t[:-1])
    return e[group_end], t[group_end], v[group_end]


def _distinct_per_elem(elem_sorted_by, other):
    """Distinct ``other`` count per element for (element, other) pairs.

    ``elem_sorted_by`` need not be pre-sorted; returns (unique elements,
    per-element distinct counts) without mixing dtypes.
    """
    order = np.lexsort((other, elem_sorted_by))
    e, o = elem_sorted_by[order], other[order]
    new_elem = np.ones(e.shape[0], dtype=bool)
    new_elem[1:] = e[1:] != e[:-1]
    new_pair = new_elem.copy()
    new_pair[1:] |= o[1:] != o[:-1]
    starts = np.where(new_elem)[0]
    counts = np.add.reduceat(new_pair.astype(np.int64), starts)
    return e[new_elem], counts


def _final_values(elem, val, order_keys):
    """Last-writer-wins value per element under the given ordering.

    ``order_keys`` are lexsort keys, least significant first; the write
    sorted *last* within each element group wins.  Returns (elements,
    values) with elements ascending.
    """
    order = np.lexsort(order_keys)
    e, v = elem[order], val[order]
    regroup = np.argsort(e, kind="stable")
    e, v = e[regroup], v[regroup]
    last = np.ones(e.shape[0], dtype=bool)
    last[:-1] = e[1:] != e[:-1]
    return e[last], v[last]


class RaceSanitizer:
    """Collects per-launch access logs and produces race reports.

    Attach via :meth:`repro.gpusim.Device.enable_sanitizer`; every
    subsequent kernel launch appends one :class:`LaunchRaceReport` to
    :attr:`reports`.
    """

    def __init__(
        self,
        fuzz_schedules: int = 3,
        seed: int = 0,
        warp_size: int = 32,
        max_findings_per_launch: int = 16,
    ) -> None:
        if fuzz_schedules < 1:
            raise ValueError("fuzz_schedules must be >= 1")
        self.fuzz_schedules = int(fuzz_schedules)
        self.seed = int(seed)
        self.warp_size = int(warp_size)
        self.max_findings_per_launch = int(max_findings_per_launch)
        self.reports: list[LaunchRaceReport] = []

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def num_races(self) -> int:
        return sum(r.num_races for r in self.reports)

    @property
    def num_warnings(self) -> int:
        return sum(r.num_warnings for r in self.reports)

    @property
    def race_free(self) -> bool:
        return all(r.race_free for r in self.reports)

    @property
    def racy_reports(self) -> list[LaunchRaceReport]:
        return [r for r in self.reports if not r.race_free]

    def kernels_checked(self) -> set[str]:
        return {r.kernel for r in self.reports}

    def reset(self) -> None:
        self.reports.clear()

    def summary(self) -> str:
        accesses = sum(r.accesses_checked for r in self.reports)
        return (
            f"sanitizer: {len(self.reports)} launches / {accesses} accesses checked, "
            f"{self.fuzz_schedules} schedules per launch: {self.num_races} race(s), "
            f"{self.num_warnings} stale-read warning(s)"
        )

    def render(self) -> str:
        lines = [self.summary()]
        for r in self.racy_reports:
            lines.append(r.render())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Schedules
    # ------------------------------------------------------------------
    def schedule_priorities(
        self, index: int, n_threads: int, launch_index: int
    ) -> tuple[np.ndarray, str]:
        """Thread priority vector of adversarial schedule ``index``.

        Higher priority = the thread's writes arbitrate *later* (win).
        Schedule 0 reverses thread ids, schedule 1 shuffles whole warps
        (intra-warp order preserved — the hardware never splits a warp),
        further schedules are full random permutations.  All draws are
        seeded from (sanitizer seed, launch index, schedule index).
        """
        t = np.arange(n_threads, dtype=np.int64)
        if index == 0:
            return n_threads - 1 - t, "reverse"
        rng = np.random.default_rng((self.seed, launch_index, index))
        if index == 1:
            w = self.warp_size
            n_warps = -(-n_threads // w)
            perm = rng.permutation(n_warps).astype(np.int64)
            return perm[t // w] * w + (t % w), "warp-shuffle"
        return rng.permutation(n_threads).astype(np.int64), f"random-{index - 1}"

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze_launch(
        self, kernel: str, n_threads: int, accesses: list[AccessRecord]
    ) -> LaunchRaceReport:
        """Analyze one launch's access log; append and return the report."""
        launch_index = len(self.reports)
        report = LaunchRaceReport(
            kernel=kernel,
            launch_index=launch_index,
            n_threads=n_threads,
            schedules_checked=self.fuzz_schedules,
        )
        # Group by (array, barrier epoch): accesses separated by an
        # in-kernel grid_sync() are ordered and analyzed independently.
        by_array: dict[tuple[int, int], list[AccessRecord]] = {}
        for rec in accesses:
            if rec.elements.size:
                by_array.setdefault((rec.array_uid, rec.epoch), []).append(rec)
        report.arrays_checked = len({uid for uid, _ in by_array})
        report.accesses_checked = int(
            sum(r.elements.size for recs in by_array.values() for r in recs)
        )

        names: list[str] = []
        for i in range(self.fuzz_schedules):
            _, name = self.schedule_priorities(i, n_threads, launch_index)
            names.append(name)
        report.schedule_names = tuple(names)

        findings: list[RaceFinding] = []
        counts: dict[str, int] = {}
        for recs in by_array.values():
            self._analyze_array(recs, n_threads, launch_index, findings, counts)
        # Races first, then warnings, then benign; truncate for display.
        sev_rank = {"race": 0, "warning": 1, "benign": 2}
        findings.sort(key=lambda f: sev_rank[f.severity])
        report.findings = findings[: self.max_findings_per_launch]
        report.counts = counts
        self.reports.append(report)
        return report

    def _analyze_array(
        self,
        recs: list[AccessRecord],
        n_threads: int,
        launch_index: int,
        findings: list[RaceFinding],
        counts: dict[str, int],
    ) -> None:
        label = recs[-1].label

        def add(kind: str, severity: str, elements, threads_of=None, detail: str = ""):
            counts[kind] = counts.get(kind, 0) + int(len(elements))
            budget = self.max_findings_per_launch - len(findings)
            for e in np.asarray(elements).ravel()[: max(0, budget)]:
                thr = ()
                if threads_of is not None:
                    thr = tuple(int(x) for x in threads_of(int(e))[:4])
                findings.append(
                    RaceFinding(
                        kind=kind,
                        severity=severity,
                        array_label=label,
                        element=int(e),
                        threads=thr,
                        detail=detail,
                    )
                )

        w_elem, w_thr, w_val, w_seq, w_pos = [], [], [], [], []
        r_elem, r_thr = [], []
        a_elem = []
        for rec in recs:
            if rec.kind == "write":
                w_elem.append(rec.elements)
                w_thr.append(rec.threads)
                w_val.append(rec.values)
                w_seq.append(np.full(rec.elements.shape[0], rec.seq, dtype=np.int64))
                w_pos.append(np.arange(rec.elements.shape[0], dtype=np.int64))
            elif rec.kind == "read":
                r_elem.append(rec.elements)
                r_thr.append(rec.threads)
            else:  # atomic
                a_elem.append(rec.elements)

        atomic_elems = (
            np.unique(np.concatenate(a_elem)) if a_elem else np.empty(0, np.int64)
        )

        if w_elem:
            elem = np.concatenate(w_elem)
            thr = np.concatenate(w_thr)
            val = np.concatenate(w_val)
            seq = np.concatenate(w_seq)
            pos = np.concatenate(w_pos)

            # --- static: per-thread final writes ---------------------------
            ef, tf, vf = _per_thread_final_writes(elem, thr, val, seq, pos)
            ue, thread_counts = _distinct_per_elem(ef, tf)
            _, value_counts = _distinct_per_elem(ef, vf)
            shared = thread_counts >= 2

            def threads_of(e: int):
                return tf[ef == e]

            ww = ue[shared & (value_counts >= 2)]
            if ww.size:
                add("write-write", "race", ww, threads_of,
                    "conflicting unsynchronized writes (final values differ)")
            ss = ue[shared & (value_counts == 1)]
            if ss.size:
                add("silent-store", "benign", ss, threads_of,
                    "duplicate same-value writes")

            # --- static: atomic / plain-store mix --------------------------
            if atomic_elems.size:
                mixed = np.intersect1d(atomic_elems, ue, assume_unique=False)
                if mixed.size:
                    add("atomic-mix", "race", mixed, threads_of,
                        "element updated both atomically and with a plain store")

            # --- static: cross-thread stale reads --------------------------
            if r_elem:
                relem = np.concatenate(r_elem)
                rthr = np.concatenate(r_thr)
                pairs_e, pairs_t = np.unique(
                    np.stack([relem, rthr]), axis=1
                )
                idx = np.searchsorted(ue, pairs_e)
                idx_ok = (idx < ue.shape[0]) & (ue[np.minimum(idx, ue.shape[0] - 1)] == pairs_e)
                # Single-writer elements: stale only if read from another
                # thread; multi-writer elements: any cross-read is stale.
                single = np.zeros(pairs_e.shape[0], dtype=bool)
                single[idx_ok] = thread_counts[idx[idx_ok]] == 1
                writer = np.full(pairs_e.shape[0], -1, dtype=np.int64)
                first_writer = tf[np.searchsorted(ef, ue)]
                writer[idx_ok] = first_writer[idx[idx_ok]]
                stale = idx_ok & (~single | (writer != pairs_t))
                stale_elems = np.unique(pairs_e[stale])
                if stale_elems.size:
                    add("stale-read", "warning", stale_elems, threads_of,
                        "read of an element concurrently written by another thread")

            # --- behavioral: schedule fuzzing ------------------------------
            ce, cv = _final_values(elem, val, (pos, seq))
            for i in range(self.fuzz_schedules):
                prio, name = self.schedule_priorities(i, n_threads, launch_index)
                se, sv = _final_values(elem, val, (pos, seq, prio[thr]))
                diverged = se[sv != cv]
                if diverged.size:
                    add(
                        "schedule-divergence", "race", diverged, threads_of,
                        f"committed value changes under schedule {name!r}",
                    )

        elif atomic_elems.size and r_elem:
            relem = np.unique(np.concatenate(r_elem))
            mixed = np.intersect1d(atomic_elems, relem)
            if mixed.size:
                add("stale-read", "warning", mixed, None,
                    "plain read of an atomically updated element")

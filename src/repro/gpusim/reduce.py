"""Parallel reductions on the simulated device."""

from __future__ import annotations

import numpy as np

from .device import Device
from .memory import DeviceArray

__all__ = ["device_sum", "device_max", "device_count_nonzero"]


def _reduce(dev: Device, d_in: DeviceArray, op, label: str):
    """Two-kernel tree reduction: block partials, then final combine."""
    n = d_in.size
    with dev.kernel(f"{label}.reduce", n_threads=max(1, n)) as k:
        vals = k.stream_read(d_in)
        k.compute(n)
        result = op(vals) if n else op(np.zeros(1, dtype=d_in.dtype))
    with dev.kernel(f"{label}.reduce_final", n_threads=max(1, n // 512 + 1)) as k:
        k.compute(max(1, n // 512))
    return result


def device_sum(dev: Device, d_in: DeviceArray, label: str = "sum"):
    return _reduce(dev, d_in, np.sum, label)


def device_max(dev: Device, d_in: DeviceArray, label: str = "max"):
    return _reduce(dev, d_in, np.max, label)


def device_count_nonzero(dev: Device, d_in: DeviceArray, label: str = "nnz") -> int:
    return int(_reduce(dev, d_in, np.count_nonzero, label))

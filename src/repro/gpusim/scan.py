"""Parallel prefix sums (the CUB primitives of paper Sec. III.A).

The paper builds the coarse-vertex map with an *inclusive* scan ("we use
the parallel inclusive-scan from the CUB library") and computes
per-thread contraction offsets with *exclusive* scans.  CUB's
decoupled-lookback scan is memory-bound: it moves each element roughly
twice (one read, one write, plus a small partials pass), so the model
charges ~2n elements of coalesced traffic over two kernel launches.

The numerical result is exact (numpy cumsum under the hood) — the
simulation affects only time, never values.
"""

from __future__ import annotations

import numpy as np

from .device import Device
from .memory import DeviceArray

__all__ = ["inclusive_scan", "exclusive_scan"]

_SCAN_PASSES = 2  # read + write sweeps of a decoupled-lookback scan


def inclusive_scan(dev: Device, d_in: DeviceArray, label: str = "scan") -> DeviceArray:
    """Inclusive prefix sum into a new device array."""
    n = d_in.size
    d_out = dev.alloc(d_in.shape, d_in.dtype, label=f"{label}.out")
    with dev.kernel(f"{label}.inclusive_scan", n_threads=max(1, n)) as k:
        vals = k.stream_read(d_in)
        # The second traffic pass: partial-sum write-back.
        k.stream_write(d_out, np.cumsum(vals, dtype=d_in.dtype))
        k.compute(_SCAN_PASSES * n)
    # CUB scans issue an auxiliary partials kernel.
    with dev.kernel(f"{label}.scan_partials", n_threads=max(1, n // 512 + 1)) as k:
        k.compute(max(1, n // 512))
    return d_out


def exclusive_scan(dev: Device, d_in: DeviceArray, label: str = "scan") -> DeviceArray:
    """Exclusive prefix sum into a new device array.

    ``out[i] = sum(in[:i])``; the total (``sum(in)``) is ``out[-1] +
    in[-1]``, which the contraction step uses to size its temp arrays.
    """
    n = d_in.size
    d_out = dev.alloc(d_in.shape, d_in.dtype, label=f"{label}.out")
    with dev.kernel(f"{label}.exclusive_scan", n_threads=max(1, n)) as k:
        vals = k.stream_read(d_in)
        out = np.zeros_like(vals)
        if n > 1:
            np.cumsum(vals[:-1], dtype=d_in.dtype, out=out[1:])
        k.stream_write(d_out, out)
        k.compute(_SCAN_PASSES * n)
    with dev.kernel(f"{label}.scan_partials", n_threads=max(1, n // 512 + 1)) as k:
        k.compute(max(1, n // 512))
    return d_out

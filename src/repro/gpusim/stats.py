"""Kernel and device statistics records."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["KernelStats", "DeviceStats"]


@dataclass
class KernelStats:
    """Aggregated counters for all launches of one kernel name."""

    name: str
    launches: int = 0
    threads_launched: int = 0
    memory_transactions: float = 0.0
    bytes_requested: float = 0.0
    compute_ops: float = 0.0
    atomic_ops: float = 0.0
    seconds: float = 0.0

    @property
    def coalescing_efficiency(self) -> float:
        """Requested bytes / bytes actually moved (1.0 = perfectly coalesced)."""
        moved = self.memory_transactions * 128.0
        return self.bytes_requested / moved if moved else 1.0


@dataclass
class DeviceStats:
    """Per-kernel-name statistics for one simulated device."""

    kernels: dict[str, KernelStats] = field(default_factory=dict)
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    peak_memory_bytes: int = 0

    def kernel(self, name: str) -> KernelStats:
        if name not in self.kernels:
            self.kernels[name] = KernelStats(name)
        return self.kernels[name]

    @property
    def total_launches(self) -> int:
        return sum(k.launches for k in self.kernels.values())

    @property
    def total_kernel_seconds(self) -> float:
        return sum(k.seconds for k in self.kernels.values())

    def by_phase_prefix(self) -> dict[str, float]:
        """Seconds grouped by the kernel-name prefix before the first dot."""
        out: dict[str, float] = defaultdict(float)
        for k in self.kernels.values():
            out[k.name.split(".", 1)[0]] += k.seconds
        return dict(out)

    def report(self) -> str:
        lines = [
            f"{'kernel':<28s} {'launches':>8s} {'txns':>12s} {'coalesce':>8s} {'seconds':>12s}"
        ]
        for name in sorted(self.kernels):
            k = self.kernels[name]
            lines.append(
                f"{name:<28s} {k.launches:>8d} {k.memory_transactions:>12.0f} "
                f"{k.coalescing_efficiency:>8.2f} {k.seconds:>12.6f}"
            )
        lines.append(
            f"transfers: {self.h2d_transfers} H2D ({self.h2d_bytes} B), "
            f"{self.d2h_transfers} D2H ({self.d2h_bytes} B); "
            f"peak device memory {self.peak_memory_bytes} B"
        )
        return "\n".join(lines)

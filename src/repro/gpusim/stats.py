"""Kernel and device statistics records."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["KernelStats", "DeviceStats"]


@dataclass
class KernelStats:
    """Aggregated counters for all launches of one kernel name."""

    name: str
    launches: int = 0
    threads_launched: int = 0
    memory_transactions: float = 0.0
    random_transactions: float = 0.0
    cached_transactions: float = 0.0
    bytes_requested: float = 0.0
    compute_ops: float = 0.0
    atomic_ops: float = 0.0
    atomic_conflicts: float = 0.0
    seconds: float = 0.0
    # Modeled-time split of ``seconds`` (the same terms the device priced:
    # memory and compute overlap, the larger one wins, atomics and launch
    # serialize on top) — the raw material of roofline/bound attribution.
    mem_seconds: float = 0.0
    compute_seconds: float = 0.0
    atomic_seconds: float = 0.0
    launch_seconds: float = 0.0
    #: DRAM transaction width the pricing device used (GpuSpec.transaction_bytes).
    transaction_bytes: float = 128.0

    @property
    def bytes_moved(self) -> float:
        """Bytes the DRAM actually transferred (whole transactions)."""
        return self.memory_transactions * self.transaction_bytes

    @property
    def coalescing_efficiency(self) -> float:
        """Requested bytes / bytes actually moved (1.0 = perfectly coalesced).

        With no transactions nothing moved: that is perfectly coalesced
        only if nothing was *requested* either — a kernel that requested
        bytes but recorded no transactions scores 0.0, not a spurious 1.0.
        The ratio is clamped to 1.0 (a transaction can be shared by
        requests, but DRAM never moves fewer bytes than were requested).
        """
        moved = self.bytes_moved
        if moved <= 0.0:
            return 1.0 if self.bytes_requested <= 0.0 else 0.0
        return min(1.0, self.bytes_requested / moved)

    @property
    def bound(self) -> str:
        """Which hardware limit this kernel ran into.

        ``latency`` when launch overhead outweighs the useful body,
        ``atomic`` when atomic serialization dominates the body, else the
        classic roofline split between ``dram-bandwidth`` and ``compute``.
        """
        body = self.mem_seconds + self.compute_seconds + self.atomic_seconds
        if self.launch_seconds >= body:
            return "latency"
        if self.atomic_seconds > max(self.mem_seconds, self.compute_seconds):
            return "atomic"
        if self.mem_seconds >= self.compute_seconds:
            return "dram-bandwidth"
        return "compute"


@dataclass
class DeviceStats:
    """Per-kernel-name statistics for one simulated device."""

    kernels: dict[str, KernelStats] = field(default_factory=dict)
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    peak_memory_bytes: int = 0

    def kernel(self, name: str) -> KernelStats:
        if name not in self.kernels:
            self.kernels[name] = KernelStats(name)
        return self.kernels[name]

    @property
    def total_launches(self) -> int:
        return sum(k.launches for k in self.kernels.values())

    @property
    def total_kernel_seconds(self) -> float:
        return sum(k.seconds for k in self.kernels.values())

    def by_phase_prefix(self) -> dict[str, float]:
        """Seconds grouped by the kernel-name prefix before the first dot."""
        out: dict[str, float] = defaultdict(float)
        for k in self.kernels.values():
            out[k.name.split(".", 1)[0]] += k.seconds
        return dict(out)

    def report(self) -> str:
        lines = [
            f"{'kernel':<28s} {'launches':>8s} {'txns':>12s} {'coalesce':>8s} {'seconds':>12s}"
        ]
        for name in sorted(self.kernels):
            k = self.kernels[name]
            lines.append(
                f"{name:<28s} {k.launches:>8d} {k.memory_transactions:>12.0f} "
                f"{k.coalescing_efficiency:>8.2f} {k.seconds:>12.6f}"
            )
        lines.append(
            f"transfers: {self.h2d_transfers} H2D ({self.h2d_bytes} B), "
            f"{self.d2h_transfers} D2H ({self.d2h_bytes} B); "
            f"peak device memory {self.peak_memory_bytes} B"
        )
        return "\n".join(lines)

"""Device arrays and the memory-coalescing model (paper Sec. III.A, Fig. 2).

A :class:`DeviceArray` wraps a host numpy array but is tagged as residing
in simulated GPU global memory; only kernels (``Device.kernel``) and
transfers may touch it, and every access is charged through the
coalescing model below.

Coalescing model: modern CUDA devices service a warp's loads in 128-byte
transactions.  When the 32 threads of a warp access addresses within one
128-byte block, the hardware issues a single transaction; scattered
accesses issue one transaction per distinct block.  Fig. 2 of the paper
shows the vertex distribution chosen so that thread ``t`` reads vertex
``base + t``, making per-warp accesses contiguous.  ``warp_transactions``
reproduces the hardware rule exactly: it maps each accessed element to
its block and counts distinct blocks per warp.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..exceptions import DeviceMemoryError

__all__ = ["DeviceArray", "warp_transactions", "stream_transactions"]

#: Monotone allocation ids — the sanitizer keys access logs by ``uid``
#: because ``id()`` values can be recycled after a ``free()``.
_UID_COUNTER = itertools.count()


class DeviceArray:
    """A numpy array living in simulated device global memory.

    The wrapper intentionally does not subclass ndarray: algorithm code
    must go through kernel accessors so accesses are accounted (and, in
    sanitize mode, race-checked).  ``.data`` exposes the raw array for
    the kernel implementations.
    """

    __slots__ = ("data", "device", "_freed", "label", "uid")

    def __init__(self, data: np.ndarray, device, label: str = "") -> None:
        self.data = data
        self.device = device
        self.label = label or "darray"
        self.uid = next(_UID_COUNTER)
        self._freed = False

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def itemsize(self) -> int:
        return int(self.data.itemsize)

    @property
    def freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Release device memory (idempotent is an error — CUDA double free)."""
        if self._freed:
            raise DeviceMemoryError(f"double free of device array {self.label!r}")
        self.device._release(self)
        self._freed = True

    def _require_live(self) -> None:
        if self._freed:
            raise DeviceMemoryError(f"use-after-free of device array {self.label!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else f"{self.nbytes}B"
        return f"DeviceArray({self.label!r}, shape={self.data.shape}, {state})"


def warp_transactions(
    indices: np.ndarray, itemsize: int, warp_size: int = 32, block_bytes: int = 128
) -> int:
    """Number of 128-byte transactions for a warp-ordered gather/scatter.

    ``indices[i]`` is the element index accessed by logical thread ``i``;
    threads are grouped into warps of ``warp_size`` consecutive ids.  The
    count is the sum over warps of distinct touched blocks — the rule the
    paper's Fig. 2 illustrates.
    """
    idx = np.asarray(indices)
    n = idx.shape[0]
    if n == 0:
        return 0
    blocks = (idx.astype(np.int64) * itemsize) // block_bytes
    pad = (-n) % warp_size
    if pad:
        blocks = np.concatenate([blocks, np.full(pad, blocks[-1], dtype=np.int64)])
    per_warp = blocks.reshape(-1, warp_size)
    per_warp = np.sort(per_warp, axis=1)
    distinct = 1 + np.count_nonzero(np.diff(per_warp, axis=1), axis=1)
    txns = int(distinct.sum())
    if pad:
        # Padding duplicated the final element; it cannot have added blocks,
        # but a partially-filled final warp still costs its distinct blocks.
        pass
    return txns


def stream_transactions(nbytes: float, block_bytes: int = 128) -> float:
    """Transactions for a perfectly coalesced sequential sweep of nbytes."""
    return float(np.ceil(nbytes / block_bytes))

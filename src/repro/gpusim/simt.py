"""SIMT execution accounting: warp divergence and thread-grid geometry.

GPUs execute 32-thread warps in lockstep; when threads of a warp take
different trip counts (e.g. scanning adjacency lists of different
lengths), the warp runs for the *maximum* trip count while short threads
idle.  The paper repeatedly attributes GP-metis slowdowns on irregular
inputs to exactly this effect, so the model must capture it.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["warp_divergent_ops", "grid_for", "threads_for_items", "divergence_factor"]


def warp_divergent_ops(per_thread_ops: np.ndarray, warp_size: int = 32) -> float:
    """Effective op count of a divergent SIMT region.

    Each warp is charged ``warp_size x max(per-thread ops)``; the sum over
    warps is the device-visible work.  Equal per-thread work degenerates
    to ``sum(per_thread_ops)``.
    """
    ops = np.asarray(per_thread_ops, dtype=np.float64)
    n = ops.shape[0]
    if n == 0:
        return 0.0
    pad = (-n) % warp_size
    if pad:
        ops = np.concatenate([ops, np.zeros(pad)])
    per_warp_max = ops.reshape(-1, warp_size).max(axis=1)
    return float(per_warp_max.sum() * warp_size)


def divergence_factor(per_thread_ops: np.ndarray, warp_size: int = 32) -> float:
    """Ratio of divergent to ideal ops (1.0 = perfectly balanced warps)."""
    ops = np.asarray(per_thread_ops, dtype=np.float64)
    total = float(ops.sum())
    if total == 0:
        return 1.0
    return warp_divergent_ops(ops, warp_size) / total


def grid_for(n_threads: int, block_size: int = 256) -> tuple[int, int]:
    """CUDA grid geometry ``(num_blocks, block_size)`` covering n_threads."""
    if n_threads <= 0:
        return (0, block_size)
    return (math.ceil(n_threads / block_size), block_size)


def threads_for_items(n_items: int, max_threads: int) -> int:
    """Thread count for a kernel over ``n_items`` items.

    The paper (Sec. III.A) reduces the number of launched threads at
    coarser levels "to prevent underutilization of GPU threads": one
    thread per item while items fit, capped by the device's resident
    thread capacity (each thread then loops over ``ceil(items/threads)``
    items, preserving Fig. 2's coalesced access pattern).
    """
    if n_items <= 0:
        return 1
    return int(min(n_items, max_threads))

"""Command-line interface: ``python -m repro <command>``.

Commands mirror the classic ``gpmetis`` binary plus this repo's extras:

* ``partition`` — partition a graph file (Metis/.gr/.npz) into k parts,
  write a Metis ``.part`` file, print quality and modeled time;
* ``generate`` — build a synthetic graph (Table I analogues or any
  generator family) and write it to a file;
* ``bench`` — run the paper's evaluation grid and print the tables;
* ``info`` — print a graph file's statistics;
* ``profile`` — partition under the span profiler and export the run as
  Chrome trace-event JSON (``--trace-out``, open in Perfetto) and/or a
  flat metrics JSON (``--metrics-out``), printing the ASCII span tree;
  ``--ledger runs.jsonl`` appends the run to a JSONL run ledger;
* ``compare`` — diff two ledger runs (or cohorts) with exact per-phase
  delta attribution down the span tree;
* ``report`` — render a ledger as a self-contained HTML report (engine
  comparison tables, phase breakdowns, trend over time);
* ``gate`` — the generalized perf-regression gate: compare fresh (or
  recorded) runs against a committed baseline ledger under a
  schema-validated tolerance policy, exiting non-zero on violation;
* ``trace`` — per-request waterfall from a service drain's ledger
  record: the critical path through queue/dispatch/engine phases plus a
  latency attribution table; ``--trace-out`` exports the drain's request
  timeline as Chrome trace-event JSON with flow arrows joining batch
  leaders to their followers;
* ``slo`` — the SLO monitor: evaluate declared objectives (latency
  percentiles per lane, error/degraded budgets, quality vs a baseline)
  over the ledger window and report burn rates, exiting 1 when any
  error budget is blown;
* ``serve`` — drive the concurrent partition service
  (:mod:`repro.service`) with a deterministic mixed workload and print
  throughput, latency percentiles and cache statistics; ``bench
  --service`` runs the same driver with differential verification and a
  machine-readable JSON report;
* ``roofline`` — hardware-utilization report for one run (fresh or from
  a ledger record): ASCII roofline chart, per-kernel bound-ness table,
  and CPU/PCIe/MPI utilization against the machine model's peaks;
* ``sanitize`` — self-check of the GPU data-race sanitizer: a clean
  GP-metis pipeline must come out race-free and a deliberately broken
  matching kernel (conflict resolution disabled) must be flagged;
* ``faults`` — deterministic fault injection (see :mod:`repro.faults`):
  run an engine under a fault plan and print the fault/recovery
  timeline, emit plan files, or ``--self-check`` the recovery machinery
  (a full fault plan must survive with a valid, ``degraded`` partition,
  and the same plan must crash once recovery is disabled).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import api
from .bench import (
    DEFAULT_SCALES,
    ExperimentConfig,
    check_paper_shape,
    render_fig5,
    render_table1,
    render_table2,
    render_table3,
    run_experiment,
)
from .graphs import (
    PAPER_DATASETS,
    evaluate_partition,
    load_dataset,
    read_graph,
    save_npz,
    write_metis,
    write_partition,
)
from .graphs import generators as gen

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "grid2d": lambda n, seed: gen.grid2d(int(n**0.5) or 1, int(n**0.5) or 1),
    "delaunay": gen.delaunay,
    "rgg": gen.random_geometric,
    "road": gen.road_network,
    "bubble": gen.bubble_mesh,
    "fe": gen.fe_matrix,
    "rmat": lambda n, seed: gen.rmat(max(1, int(n).bit_length() - 1), seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    pp = sub.add_parser("partition", help="partition a graph file")
    pp.add_argument("graph", help="input .graph/.metis/.gr/.npz file")
    pp.add_argument("-k", type=int, default=64, help="number of partitions")
    pp.add_argument(
        "--method", default="gp-metis", choices=api.available_methods(),
    )
    pp.add_argument("--ubfactor", type=float, default=1.03)
    pp.add_argument("--seed", type=int, default=1)
    pp.add_argument(
        "--sanitize", action="store_true",
        help="run GPU kernels under the data-race sanitizer (gp-metis only) "
             "and print the per-launch race report",
    )
    pp.add_argument(
        "--fault-plan", metavar="FILE",
        help="inject faults from this plan JSON (repro.faults.plan/1) and "
             "print the fault/recovery timeline",
    )
    pp.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="inject faults from a plan derived deterministically from N",
    )
    pp.add_argument("-o", "--output", help="write a Metis .part file here")

    pg = sub.add_parser("generate", help="generate a synthetic graph")
    group = pg.add_mutually_exclusive_group(required=True)
    group.add_argument("--dataset", choices=list(PAPER_DATASETS),
                       help="a Table I analogue")
    group.add_argument("--family", choices=list(_GENERATORS),
                       help="a generator family")
    pg.add_argument("-n", type=int, default=10_000, help="vertices (family mode)")
    pg.add_argument("--scale", type=float, default=0.01, help="scale (dataset mode)")
    pg.add_argument("--seed", type=int, default=0)
    pg.add_argument("-o", "--output", required=True,
                    help="output file (.graph or .npz)")

    pb = sub.add_parser("bench", help="run the paper's evaluation grid")
    pb.add_argument("-k", type=int, default=64)
    pb.add_argument("--scale", type=float, default=1.0,
                    help="multiplier on the default dataset scales")
    pb.add_argument("--repeats", type=int, default=1)
    pb.add_argument(
        "--datasets", metavar="A,B",
        help="comma-separated subset of the paper datasets (default: all)",
    )
    pb.add_argument(
        "--methods", metavar="A,B",
        help="comma-separated subset of methods (default: all four); "
             "comparative tables and shape checks need the full grid",
    )
    pb.add_argument("-o", "--output", help="write a markdown report here")
    pb.add_argument(
        "--json", metavar="FILE", default="BENCH_results.json",
        help="write machine-readable per-engine/per-graph results here "
             "(default: BENCH_results.json)",
    )
    pb.add_argument(
        "--no-json", action="store_true",
        help="skip writing the machine-readable results file",
    )
    pb.add_argument(
        "--service", action="store_true",
        help="benchmark the concurrent partition service instead of the "
             "paper grid: run the standard mixed workload with "
             "differential verification and write BENCH_service.json",
    )
    _add_service_arguments(pb)

    psrv = sub.add_parser(
        "serve",
        help="drive the concurrent partition service with a mixed workload",
    )
    _add_service_arguments(psrv)
    psrv.add_argument(
        "--verify", action="store_true",
        help="differentially check every unique configuration against a "
             "direct synchronous partition() call",
    )
    psrv.add_argument(
        "--json", metavar="FILE",
        help="write the machine-readable service report here",
    )
    psrv.add_argument(
        "--ledger", metavar="FILE",
        help="append one ledger record per served request (plus one "
             "engine=service record per drain) to this JSONL file",
    )

    pi = sub.add_parser("info", help="print a graph file's statistics")
    pi.add_argument("graph")

    pf = sub.add_parser(
        "profile",
        help="partition under the span profiler and export trace/metrics",
    )
    pf.add_argument("graph", help="input .graph/.metis/.gr/.npz file")
    pf.add_argument("-k", type=int, default=64, help="number of partitions")
    pf.add_argument(
        "--method", default="gp-metis", choices=api.available_methods(),
    )
    pf.add_argument("--ubfactor", type=float, default=1.03)
    pf.add_argument("--seed", type=int, default=1)
    pf.add_argument(
        "--trace-out", metavar="FILE",
        help="write Chrome trace-event JSON here (open at ui.perfetto.dev)",
    )
    pf.add_argument(
        "--metrics-out", metavar="FILE", help="write the flat metrics JSON here"
    )
    pf.add_argument(
        "--depth", type=int, default=None,
        help="limit the printed ASCII tree to this many levels",
    )
    pf.add_argument(
        "--ledger", metavar="FILE",
        help="append this run to a JSONL run ledger (one record per run: "
             "config fingerprint, span rollup, metrics snapshot)",
    )

    pc = sub.add_parser(
        "compare",
        help="diff two ledger runs with per-phase delta attribution",
    )
    pc.add_argument(
        "run_a", help="baseline run: LEDGER.jsonl[:INDEX] (default index -1, "
                      "the newest record; ':*' averages the whole file as a cohort)",
    )
    pc.add_argument("run_b", help="current run, same forms as run_a")
    pc.add_argument(
        "--ledger", metavar="FILE",
        help="resolve bare indices / ':*' operands against this ledger file",
    )

    pr = sub.add_parser(
        "report", help="render a run ledger as a self-contained HTML report"
    )
    pr.add_argument("--ledger", metavar="FILE", required=True,
                    help="the JSONL run ledger to render")
    pr.add_argument("-o", "--output", default="report.html",
                    help="output HTML file (default: report.html)")
    pr.add_argument("--title", default="repro run ledger")
    pr.add_argument(
        "--slo-policy", metavar="FILE",
        help="SLO policy JSON (schema repro.obs.slo-policy/1); adds the "
             "SLO page (objective verdicts + per-lane budget burn-down)",
    )

    ptr = sub.add_parser(
        "trace",
        help="per-request waterfall: critical path and latency attribution "
             "from a service drain's ledger record",
    )
    ptr.add_argument("ledger", help="JSONL run ledger with service drains")
    ptr.add_argument(
        "--request", metavar="ID",
        help="fingerprint or trace-id prefix of the request to render "
             "(default: the slowest request of the latest drain)",
    )
    ptr.add_argument(
        "--list", action="store_true",
        help="list every request in the window instead of rendering one",
    )
    ptr.add_argument(
        "--window", type=int, default=1, metavar="N",
        help="look at the last N service drains (default 1, 0 = all)",
    )
    ptr.add_argument(
        "--trace-out", metavar="FILE",
        help="also export the latest drain's request timeline as Chrome "
             "trace-event JSON (flow arrows join batch leaders/followers)",
    )

    pslo = sub.add_parser(
        "slo",
        help="evaluate SLO objectives (latency percentiles, error/degraded "
             "budgets, quality) over a run ledger; exit 1 on budget burn",
    )
    pslo.add_argument("ledger", help="JSONL run ledger to evaluate")
    pslo.add_argument(
        "--policy", metavar="FILE", required=True,
        help="SLO policy JSON (schema repro.obs.slo-policy/1)",
    )
    pslo.add_argument(
        "--baseline", metavar="FILE",
        help="baseline ledger for quality max_ratio objectives",
    )
    pslo.add_argument(
        "--json", metavar="FILE", dest="json_out",
        help="also write the evaluation as machine-readable JSON",
    )

    pgate = sub.add_parser(
        "gate",
        help="perf-regression gate: current runs vs a committed baseline "
             "ledger under a tolerance policy",
    )
    pgate.add_argument(
        "--baseline", metavar="FILE", required=True,
        help="committed baseline ledger (JSONL)",
    )
    pgate.add_argument(
        "--policy", metavar="FILE",
        help="gate policy JSON (schema repro.obs.gate-policy/1); "
             "defaults to phases+total+cut at 10%%",
    )
    pgate.add_argument(
        "--current", metavar="FILE",
        help="compare these recorded runs instead of freshly profiling "
             "the standard gate workload",
    )
    pgate.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline ledger from the current runs and exit 0",
    )

    pa = sub.add_parser("analyze", help="structural profile + cut bounds")
    pa.add_argument("graph")
    pa.add_argument("-k", type=int, default=64,
                    help="partition count for the cut lower bounds")

    prf = sub.add_parser(
        "roofline",
        help="hardware-utilization report: per-kernel roofline and "
             "bound-ness, plus CPU/PCIe/MPI utilization vs machine peaks",
    )
    prf.add_argument(
        "graph", nargs="?",
        help="input graph file (default: a built-in delaunay mesh of -n "
             "vertices)",
    )
    prf.add_argument("-k", type=int, default=8, help="number of partitions")
    prf.add_argument(
        "--method", default="gp-metis", choices=api.available_methods(),
    )
    prf.add_argument("-n", type=int, default=20000,
                     help="vertices of the built-in graph (default 20000, "
                          "large enough that the hybrid keeps levels on "
                          "the GPU)")
    prf.add_argument("--seed", type=int, default=1)
    prf.add_argument(
        "--ledger", metavar="FILE[:INDEX]",
        help="render a recorded run's hw block instead of running fresh "
             "(default index -1, the newest record)",
    )
    prf.add_argument(
        "--json", metavar="FILE", dest="json_out",
        help="also write the hw section as JSON ('-' for stdout)",
    )
    prf.add_argument("--no-chart", action="store_true",
                     help="skip the ASCII roofline chart")

    ps = sub.add_parser("sanitize", help="data-race sanitizer self-check")
    ps.add_argument("-n", type=int, default=9000,
                    help="vertices of the clean-run test graph")
    ps.add_argument("--schedules", type=int, default=3,
                    help="fuzzed thread schedules per kernel launch")
    ps.add_argument("--seed", type=int, default=1)

    pfa = sub.add_parser(
        "faults",
        help="run an engine under a deterministic fault plan "
             "(or --self-check the recovery machinery)",
    )
    pfa.add_argument(
        "graph", nargs="?",
        help="input graph file (default: a built-in delaunay mesh of -n vertices)",
    )
    pfa.add_argument("-k", type=int, default=8, help="number of partitions")
    pfa.add_argument(
        "--method", default="gp-metis", choices=api.available_methods(),
    )
    pfa.add_argument("-n", type=int, default=9000,
                     help="vertices of the built-in graph")
    pfa.add_argument("--seed", type=int, default=1, help="engine RNG seed")
    pfa.add_argument(
        "--plan", metavar="FILE",
        help="fault plan JSON (schema repro.faults.plan/1); default is the "
             "exhaustive built-in plan covering every injection site",
    )
    pfa.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="derive a random plan deterministically from N instead of --plan",
    )
    pfa.add_argument(
        "--intensity", type=float, default=0.5,
        help="fault density of --fault-seed plans, 0..1 (default 0.5)",
    )
    pfa.add_argument(
        "--no-recover", action="store_true",
        help="disable recovery: injected faults crash the run instead of "
             "being retried or degraded around",
    )
    pfa.add_argument(
        "--emit-plan", metavar="FILE",
        help="write the selected plan JSON here and exit (edit + replay "
             "with --plan)",
    )
    pfa.add_argument(
        "--ledger", metavar="FILE",
        help="append the faulted run to this JSONL run ledger",
    )
    pfa.add_argument(
        "--self-check", action="store_true",
        help="mutation-style check of the recovery machinery: the full "
             "plan must survive with a valid degraded partition, and the "
             "same plan must fail once recovery is disabled",
    )
    return p


def _add_service_arguments(parser) -> None:
    parser.add_argument("--workers", type=int, default=4,
                        help="simulated CPU workers in the pool (default 4)")
    parser.add_argument("--gpu-slots", type=int, default=1,
                        help="concurrent GPU leases (default 1, the paper testbed)")
    parser.add_argument("--requests", type=int, default=100,
                        help="workload size (default 100)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="admission limit per priority lane (default 64)")
    parser.add_argument("--graph-n", type=int, default=600,
                        help="vertices of the workload graphs (default 600)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the fingerprint result cache")
    parser.add_argument("--no-batching", action="store_true",
                        help="disable identical-graph batch amortization")


def _run_service_load(args, *, verify: bool) -> dict:
    """Build the standard workload, serve it, and return the report."""
    from .service import (
        PartitionService,
        ServiceConfig,
        WorkloadSpec,
        build_workload,
        run_load,
    )

    spec = WorkloadSpec(requests=args.requests, graph_n=args.graph_n)
    service = PartitionService(
        ServiceConfig(
            num_workers=args.workers,
            gpu_slots=args.gpu_slots,
            queue_limit=args.queue_limit,
            cache_enabled=not args.no_cache,
            batching=not args.no_batching,
        )
    )
    report = run_load(service, build_workload(spec), verify=verify)
    report["config"] = {
        "workers": args.workers,
        "gpu_slots": args.gpu_slots,
        "requests": args.requests,
        "queue_limit": args.queue_limit,
        "graph_n": args.graph_n,
        "cache": not args.no_cache,
        "batching": not args.no_batching,
    }
    return report


def _render_service_report(report: dict) -> None:
    svc = report["service"]
    cfg = report["config"]
    print(f"service: {cfg['workers']} worker(s), {cfg['gpu_slots']} GPU "
          f"slot(s), queue limit {cfg['queue_limit']}/lane")
    print(f"requests        : {report['requests']} "
          f"(served {report['served']}, failed {report['failed']}, "
          f"dropped {report['dropped']})")
    print(f"backpressure    : {report['resubmissions']} resubmission(s) "
          "after overload")
    print(f"cache           : {report['cache_hits']} hit(s), "
          f"{report['cache_misses']} miss(es), "
          f"hit rate {svc['cache']['hit_rate']:.2f}, "
          f"saved {svc['cache']['saved_seconds']:.6f} modeled s")
    print(f"batching        : {report['batched_followers']} follower(s) "
          "amortized the CSR transfer")
    print(f"throughput      : {svc['throughput_rps']:.1f} req/s "
          "(modeled, last drain)")
    print(f"latency p50/p95 : {svc['latency_p50']:.6f} / "
          f"{svc['latency_p95']:.6f} s")
    print(f"queue wait p95  : {svc['queue_wait_p95']:.6f} s")
    print(f"utilization     : {svc['utilization']:.2f}")
    if "verification" in report:
        v = report["verification"]
        status = "PASS" if v["ok"] else "FAIL"
        print(f"verification    : {status} ({v['unique_configs']} unique "
              f"config(s) vs direct partition(); "
              f"{len(v['mismatches'])} mismatch(es))")


def _cmd_serve(args) -> int:
    from .obs import ledger as ledger_mod

    if getattr(args, "ledger", None):
        ledger_mod.set_default_ledger(args.ledger)
    try:
        report = _run_service_load(args, verify=args.verify)
    finally:
        if getattr(args, "ledger", None):
            ledger_mod.set_default_ledger(None)
    _render_service_report(report)
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=str)
        print(f"wrote {args.json}")
    failed = report["failed"] or report["dropped"]
    if args.verify and not report["verification"]["ok"]:
        failed = True
    return 1 if failed else 0


def _cmd_bench_service(args) -> int:
    """``bench --service``: the load driver with verification gates.

    Exit 0 requires: every request completed (none dropped), at least
    one cache hit, and every service result identical to a direct
    synchronous run.
    """
    import json

    report = _run_service_load(args, verify=True)
    _render_service_report(report)
    checks = [
        ("all requests completed",
         report["completed"] == report["requests"] and not report["dropped"]),
        ("no failed requests", report["failed"] == 0),
        ("cache produced at least one hit", report["cache_hits"] >= 1),
        ("latency percentiles reported",
         report["service"]["latency_p50"] is not None
         and report["service"]["latency_p95"] is not None),
        ("service results match direct partition()",
         report["verification"]["ok"]),
        ("request spans share their ticket's trace id",
         report["tracing"]["spans_share_trace"]
         and report["tracing"]["trace_ids_present"]
         and report["tracing"]["trace_ids_unique"]),
        ("attribution buckets sum to latency (1e-6)",
         report["tracing"]["attribution_sums_to_latency"]),
    ]
    ok = True
    for label, passed in checks:
        print(("PASS" if passed else "FAIL"), label)
        ok = ok and passed
    out = args.json if args.json != "BENCH_results.json" else "BENCH_service.json"
    if not args.no_json:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=str)
        print(f"wrote {out} (machine-readable service report)")
    print("service bench:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _select_fault_plan(args):
    """The fault plan chosen by ``--plan`` / ``--fault-seed`` (or default).

    Returns ``(plan, error_exit_code)``; exactly one of the two is set.
    """
    from .faults import FaultPlan, load_plan

    if getattr(args, "plan", None) and args.fault_seed is not None:
        print("error: --plan and --fault-seed are mutually exclusive",
              file=sys.stderr)
        return None, 2
    if getattr(args, "plan", None):
        try:
            return load_plan(args.plan), None
        except (OSError, ValueError) as exc:
            print(f"error: bad fault plan: {exc}", file=sys.stderr)
            return None, 2
    if args.fault_seed is not None:
        intensity = getattr(args, "intensity", 0.5)
        return FaultPlan.from_seed(args.fault_seed, intensity=intensity), None
    return FaultPlan.full(args.seed), None


def _render_fault_summary(result) -> None:
    events = result.extras.get("fault_events", [])
    injected = sum(1 for e in events if e.category == "fault")
    recovered = sum(1 for e in events if e.category == "recovery")
    print(f"faults injected : {injected}")
    print(f"recoveries      : {recovered}")
    print(f"degraded        : {result.extras.get('degraded', False)}")
    if events:
        print("fault/recovery timeline:")
        for event in events:
            print(event.render())


def _cmd_partition(args) -> int:
    graph = read_graph(args.graph)
    print(f"input: {graph}")
    opts = {}
    if args.sanitize:
        if args.method not in ("gp-metis", "gpmetis", "gp_metis"):
            print("--sanitize requires --method gp-metis", file=sys.stderr)
            return 2
        opts["sanitize"] = True
    if args.fault_plan or args.fault_seed is not None:
        from .faults import FaultPlan, load_plan

        if args.fault_plan and args.fault_seed is not None:
            print("error: --fault-plan and --fault-seed are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        try:
            if args.fault_plan:
                opts["fault_plan"] = load_plan(args.fault_plan)
            else:
                opts["fault_plan"] = FaultPlan.from_seed(args.fault_seed)
        except (OSError, ValueError) as exc:
            print(f"error: bad fault plan: {exc}", file=sys.stderr)
            return 2
    t0 = time.perf_counter()
    result = api.partition(
        graph, args.k, method=args.method, ubfactor=args.ubfactor,
        seed=args.seed, **opts,
    )
    wall = time.perf_counter() - t0
    q = evaluate_partition(graph, result.part, args.k)
    print(f"method={args.method} k={args.k}")
    print(f"edge cut      : {q.cut}")
    print(f"imbalance     : {q.imbalance:.4f} (tolerance {args.ubfactor})")
    print(f"comm volume   : {q.comm_volume}")
    print(f"modeled time  : {result.modeled_seconds:.6f} s (simulated testbed)")
    print(f"wall time     : {wall:.3f} s (this Python process)")
    if "fault_plan" in opts:
        _render_fault_summary(result)
    san = result.extras.get("sanitizer") if args.sanitize else None
    if san is not None:
        print(san.render())
    if args.output:
        write_partition(result.part, args.output)
        print(f"wrote {args.output}")
    return 1 if san is not None and not san.race_free else 0


def _cmd_profile(args) -> int:
    from .obs import (
        render_tree,
        validate_chrome_trace,
        validate_metrics,
        write_chrome_trace,
        write_metrics_json,
    )
    from .obs import ledger as ledger_mod

    graph = read_graph(args.graph)
    print(f"input: {graph}")
    if args.ledger:
        # Route through the finish_run hook, so the engine itself writes
        # the record — the same path any library caller gets.
        ledger_mod.set_default_ledger(args.ledger)
    try:
        result = api.partition(
            graph, args.k, method=args.method, ubfactor=args.ubfactor,
            seed=args.seed,
        )
    finally:
        if args.ledger:
            ledger_mod.set_default_ledger(None)
    profiler = result.profiler
    if profiler is None:
        print(f"method {args.method!r} does not attach a profiler", file=sys.stderr)
        return 2
    print(render_tree(profiler, max_depth=args.depth))
    if args.ledger:
        last = ledger_mod.read_ledger(args.ledger)[-1]
        print(f"appended run {last['run_id']} to {args.ledger}")
    if args.trace_out:
        validate_chrome_trace(write_chrome_trace(profiler, args.trace_out))
        print(f"wrote {args.trace_out} (chrome trace-event; open at ui.perfetto.dev)")
    if args.metrics_out:
        validate_metrics(write_metrics_json(profiler, args.metrics_out))
        print(f"wrote {args.metrics_out}")
    return 0


def _resolve_runs(operand: str, default_ledger: str | None):
    """A ``compare`` operand -> list of ledger records.

    Forms: ``PATH``, ``PATH:INDEX``, ``PATH:*`` (whole-file cohort), and
    with ``--ledger`` also bare ``INDEX`` / ``*``.
    """
    from .obs import read_ledger

    path, _, selector = operand.rpartition(":")
    if not path:
        # No ':' in the operand: a bare path, or (with --ledger) a selector.
        if default_ledger and (operand == "*" or _is_int(operand)):
            path, selector = default_ledger, operand
        else:
            path, selector = operand, "-1"
    elif not selector or not (selector == "*" or _is_int(selector)):
        path, selector = operand, "-1"
    records = read_ledger(path)
    if not records:
        raise ValueError(f"{path}: ledger is empty")
    if selector == "*":
        return records
    index = int(selector)
    try:
        return [records[index]]
    except IndexError:
        raise ValueError(
            f"{path}: index {index} out of range ({len(records)} records)"
        ) from None


def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True


def _cmd_compare(args) -> int:
    from .obs import aggregate_records, compare_runs, render_comparison

    try:
        base = aggregate_records(_resolve_runs(args.run_a, args.ledger))
        cur = aggregate_records(_resolve_runs(args.run_b, args.ledger))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_comparison(compare_runs(base, cur)))
    return 0


def _cmd_report(args) -> int:
    from .obs import (
        evaluate_slo,
        lane_burn_down,
        load_slo_policy,
        read_ledger,
        write_html_report,
    )

    try:
        records = read_ledger(args.ledger)
        slo = None
        if args.slo_policy:
            policy = load_slo_policy(args.slo_policy)
            slo = {
                "results": evaluate_slo(policy, records),
                "burn_down": lane_burn_down(policy, records),
                "window": int(policy.get("window_drains", 0)),
            }
        write_html_report(records, args.output, title=args.title, slo=slo)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"wrote {args.output} ({len(records)} run(s); self-contained HTML, "
        "open in any browser)"
    )
    return 0


def _cmd_trace(args) -> int:
    import json

    from .obs import read_ledger, render_waterfall, requests_chrome_trace
    from .obs.schema import validate_chrome_trace
    from .obs.slo import service_drain_records

    try:
        records = read_ledger(args.ledger)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    drains = service_drain_records(records, max(0, args.window))
    if not drains:
        print(f"error: {args.ledger}: no service drain records with a "
              "requests section (run `repro serve --ledger ...`)",
              file=sys.stderr)
        return 2
    entries = [e for d in drains for e in d["requests"]]

    if args.list:
        print(f"{len(entries)} request(s) across {len(drains)} drain(s):")
        for e in sorted(entries, key=lambda e: -e["latency"]):
            print(
                f"  {e['trace_id']}  {e['fingerprint'][:12]:<12s} "
                f"{e['engine']:<14s} {e['graph']:<12s} lane={e['lane']} "
                f"{e['status']:<9s} {e['cache']:<5s} "
                f"latency={e['latency'] * 1e3:8.3f} ms"
            )
        return 0

    if args.request:
        needle = args.request
        matches = [
            e for e in entries
            if e["fingerprint"].startswith(needle)
            or e["trace_id"].startswith(needle)
        ]
        if not matches:
            print(f"error: no request matches {needle!r} "
                  f"(try `repro trace {args.ledger} --list`)", file=sys.stderr)
            return 2
        if len({e["trace_id"] for e in matches}) > 1:
            print(f"error: {needle!r} is ambiguous "
                  f"({len(matches)} requests); use a trace-id prefix",
                  file=sys.stderr)
            return 2
        entry = matches[-1]
    else:
        entry = max(entries, key=lambda e: e["latency"])

    print(render_waterfall(entry))

    if args.trace_out:
        doc = requests_chrome_trace(drains[-1])
        validate_chrome_trace(doc)
        with open(args.trace_out, "w") as fh:
            json.dump(doc, fh, indent=1)
        print(f"\nwrote {args.trace_out} "
              f"({len(doc['traceEvents'])} events; open in Perfetto)")
    return 0


def _cmd_slo(args) -> int:
    import dataclasses
    import json

    from .obs import (
        evaluate_slo,
        load_slo_policy,
        read_ledger,
        render_slo,
        slo_ok,
    )

    try:
        policy = load_slo_policy(args.policy)
    except (OSError, ValueError) as exc:
        print(f"error: bad policy: {exc}", file=sys.stderr)
        return 2
    try:
        records = read_ledger(args.ledger)
        baseline = read_ledger(args.baseline) if args.baseline else None
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    results = evaluate_slo(policy, records, baseline_records=baseline)
    window = int(policy.get("window_drains", 0))
    print(render_slo(results, window=window))

    if args.json_out:
        import math

        def _jsonable(r):
            d = dataclasses.asdict(r)
            if math.isinf(d["burn_rate"]):
                d["burn_rate"] = None  # JSON has no Infinity
            d["budget_remaining"] = r.budget_remaining
            return d

        doc = {
            "schema": "repro.obs.slo-report/1",
            "policy": args.policy,
            "window_drains": window,
            "ok": slo_ok(results),
            "objectives": [_jsonable(r) for r in results],
        }
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=1, default=str)
        print(f"wrote {args.json_out}")
    return 0 if slo_ok(results) else 1


def _cmd_gate(args) -> int:
    import json
    import pathlib

    from .obs import (
        DEFAULT_POLICY,
        collect_workload_records,
        evaluate_gate,
        load_policy,
        read_ledger,
        render_gate,
    )

    try:
        policy = load_policy(args.policy) if args.policy else DEFAULT_POLICY
    except (OSError, ValueError) as exc:
        print(f"error: bad policy: {exc}", file=sys.stderr)
        return 2

    if args.current:
        try:
            current = read_ledger(args.current)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not current:
            print(f"error: {args.current}: ledger is empty", file=sys.stderr)
            return 2
        print(f"current: {len(current)} recorded run(s) from {args.current}")
    else:
        print("collecting the standard gate workload "
              "(see repro.bench.baseline.BaselineConfig)...")
        current = collect_workload_records()

    baseline_path = pathlib.Path(args.baseline)
    if args.update or not baseline_path.exists():
        with open(baseline_path, "w") as fh:
            for record in current:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        print(f"wrote baseline ledger {baseline_path} ({len(current)} run(s))")
        return 0

    try:
        baseline = read_ledger(baseline_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: {baseline_path}: ledger is empty", file=sys.stderr)
        return 2
    violations, checks, notes = evaluate_gate(policy, baseline, current)
    print(render_gate(violations, checks, notes))
    return 1 if violations else 0


def _cmd_generate(args) -> int:
    if args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    else:
        graph = _GENERATORS[args.family](args.n, args.seed)
    print(f"generated: {graph}")
    if str(args.output).endswith(".npz"):
        save_npz(graph, args.output)
    else:
        write_metis(graph, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_bench(args) -> int:
    from .bench import DEFAULT_METHODS

    if args.service:
        return _cmd_bench_service(args)
    extra = {}
    if args.datasets:
        extra["datasets"] = tuple(args.datasets.split(","))
    if args.methods:
        extra["methods"] = tuple(args.methods.split(","))
    cfg = ExperimentConfig(
        k=args.k,
        repeats=args.repeats,
        scales={name: s * args.scale for name, s in DEFAULT_SCALES.items()},
        **extra,
    )
    results = run_experiment(cfg, verbose=True)
    full_grid = set(DEFAULT_METHODS) <= set(cfg.methods)
    print()
    blocks = [render_table1(results)]
    if full_grid:
        blocks += [render_fig5(results), render_table2(results), render_table3(results)]
    for block in blocks:
        print(block)
        print()
    failed = []
    if full_grid:
        failed = [c for c in check_paper_shape(results) if not c.holds]
        for c in check_paper_shape(results):
            print(("PASS" if c.holds else "FAIL"), c.claim)
    if args.output:
        from .bench import write_report

        write_report(results, args.output)
        print(f"wrote {args.output}")
    if args.json and not args.no_json:
        from .bench import write_results_json

        write_results_json(results, args.json)
        print(f"wrote {args.json} (machine-readable per-engine results)")
    return 1 if failed else 0


def _cmd_info(args) -> int:
    graph = read_graph(args.graph)
    deg = graph.degrees()
    print(f"name            : {graph.name}")
    print(f"vertices        : {graph.num_vertices}")
    print(f"edges           : {graph.num_edges}")
    print(f"avg degree      : {2 * graph.num_edges / max(1, graph.num_vertices):.2f}")
    print(f"max degree      : {graph.max_degree}")
    print(f"total vwgt      : {graph.total_vertex_weight}")
    print(f"total ewgt      : {graph.total_edge_weight}")
    print(f"memory (CSR)    : {graph.nbytes} bytes")
    if graph.num_vertices:
        comps = len(set(graph.connected_components().tolist()))
        print(f"components      : {comps}")
    return 0


def _cmd_analyze(args) -> int:
    from .graphs import (
        perfect_balance_cut_lower_bound,
        profile_graph,
        spectral_cut_lower_bound,
    )

    graph = read_graph(args.graph)
    p = profile_graph(graph)
    print(p.describe())
    print(f"degree cv       : {p.degree_cv:.3f}")
    print(f"avg bandwidth   : {p.avg_bandwidth:.1f}")
    print(f"index locality  : {p.index_locality:.3f} "
          "(fraction of arcs within +-64 ids; drives GPU coalescing)")
    print(f"components      : {p.components}")
    print(f"weighted        : edges={p.weighted_edges} vertices={p.weighted_vertices}")
    spectral = spectral_cut_lower_bound(graph, args.k)
    degree = perfect_balance_cut_lower_bound(graph, args.k)
    print(f"cut lower bounds (k={args.k}): spectral >= {spectral:.1f}, "
          f"degree >= {degree}")
    return 0


def _cmd_sanitize(args) -> int:
    """Self-check the race sanitizer: clean pipeline, then a planted race."""
    import numpy as np

    from .gpmetis.kernels.matching import gpu_match
    from .gpusim.device import Device
    from .gpusim.transfer import transfer_graph_to_device
    from .runtime.clock import SimClock
    from .runtime.machine import PAPER_MACHINE

    if args.schedules < 1:
        print("--schedules must be >= 1", file=sys.stderr)
        return 2
    if args.n < 3000:
        print(f"-n {args.n} is below the GPU threshold; the clean-run check "
              "needs a graph the GPU path actually executes (>= 3000)",
              file=sys.stderr)
        return 2

    ok = True

    # 1. The full GP-metis pipeline must be race-free under fuzzing.
    graph = gen.delaunay(args.n, seed=args.seed)
    result = api.partition(
        graph, 8, method="gp-metis", seed=args.seed,
        sanitize=True, fuzz_schedules=args.schedules, gpu_threshold_min=2048,
    )
    san = result.extras["sanitizer"]
    print(san.summary())
    kernels = san.kernels_checked()
    families = sorted({name.split(".")[-1].split("_")[0] for name in kernels})
    print(f"kernels checked: {sorted(kernels)}")
    if not san.race_free:
        print("FAIL clean pipeline reported races:")
        for r in san.racy_reports:
            print(r.render())
        ok = False
    else:
        print(f"PASS clean pipeline race-free ({len(san.reports)} launches, "
              f"families: {', '.join(families)})")
    if not any(n.startswith("coarsen.match") for n in kernels):
        print("FAIL clean run never reached the GPU matching kernel")
        ok = False

    # 2. Disabling conflict resolution must be caught (mutation self-check).
    star = gen.star_graph(64)
    dev = Device(PAPER_MACHINE.gpu, SimClock())
    mut = dev.enable_sanitizer(fuzz_schedules=args.schedules, seed=args.seed)
    d_csr = transfer_graph_to_device(dev, star, PAPER_MACHINE.interconnect)
    gpu_match(
        dev, d_csr, star, n_threads=32, scheme="hem",
        rng=np.random.default_rng(args.seed), resolve_conflicts=False,
    )
    if mut.num_races:
        kinds = sorted({
            f.kind for r in mut.racy_reports for f in r.findings
            if f.severity == "race"
        })
        print(f"PASS mutation detected: {mut.num_races} race(s) "
              f"({', '.join(kinds)}) with resolution disabled")
    else:
        print("FAIL mutation not detected: resolution disabled but no race flagged")
        ok = False

    print("sanitizer self-check:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_faults(args) -> int:
    from .exceptions import ReproError
    from .obs import ledger as ledger_mod

    plan, err = _select_fault_plan(args)
    if err is not None:
        return err
    if args.emit_plan:
        plan.dump(args.emit_plan)
        print(f"wrote {args.emit_plan} ({len(plan.specs)} spec(s), "
              f"seed {plan.seed})")
        return 0
    if args.self_check:
        return _faults_self_check(args)

    graph = read_graph(args.graph) if args.graph else gen.delaunay(
        args.n, seed=args.seed
    )
    print(f"input: {graph}")
    print(plan.describe())
    if args.ledger:
        ledger_mod.set_default_ledger(args.ledger)
    try:
        result = api.partition(
            graph, args.k, method=args.method, seed=args.seed,
            fault_plan=plan, fault_recovery=not args.no_recover,
        )
    except ReproError as exc:
        if getattr(exc, "injected", False):
            print(f"run failed on an injected fault: "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        raise
    finally:
        if args.ledger:
            ledger_mod.set_default_ledger(None)
    q = evaluate_partition(graph, result.part, args.k)
    print(f"method={args.method} k={args.k}")
    print(f"edge cut        : {q.cut}")
    print(f"imbalance       : {q.imbalance:.4f}")
    print(f"modeled time    : {result.modeled_seconds:.6f} s")
    _render_fault_summary(result)
    if args.ledger:
        last = ledger_mod.read_ledger(args.ledger)[-1]
        print(f"appended run {last['run_id']} to {args.ledger}")
    return 0


def _faults_self_check(args) -> int:
    """Mutation-style proof that the recovery machinery carries the run.

    1. GP-metis under the exhaustive built-in plan must finish with a
       valid, balanced k-way partition flagged ``degraded``, and the
       ledger record must carry the fault/recovery evidence.
    2. The identical plan with recovery disabled must fail on an
       injected fault — showing the pass above is the recovery code's
       doing, not the faults being harmless.
    """
    import os
    import tempfile

    from .exceptions import ReproError
    from .faults import FaultPlan
    from .graphs.metrics import imbalance as imbalance_of
    from .obs import ledger as ledger_mod

    ok = True
    plan = FaultPlan.full(args.seed)
    graph = gen.delaunay(args.n, seed=args.seed)
    k = args.k
    ubfactor = 1.03
    print(f"graph: {graph}")
    print(f"plan : exhaustive, seed {args.seed}, {len(plan.specs)} spec(s) "
          "covering every injection site")

    # 1. Recovery on: survive, degrade, and leave evidence in the ledger.
    with tempfile.TemporaryDirectory() as tmpdir:
        ledger_path = os.path.join(tmpdir, "faults.jsonl")
        ledger_mod.set_default_ledger(ledger_path)
        try:
            result = api.partition(
                graph, k, method="gp-metis", seed=args.seed, ubfactor=ubfactor,
                fault_plan=plan, gpu_threshold_min=2048,
            )
        except ReproError as exc:
            print(f"FAIL recovery-enabled run died: {type(exc).__name__}: {exc}")
            ledger_mod.set_default_ledger(None)
            print("faults self-check: FAIL")
            return 1
        finally:
            ledger_mod.set_default_ledger(None)
        record = ledger_mod.read_ledger(ledger_path)[-1]

    part = result.part
    events = result.extras.get("fault_events", [])
    injected = sum(1 for e in events if e.category == "fault")
    recovered = sum(1 for e in events if e.category == "recovery")
    checks = [
        ("partition covers all k parts",
         part.shape[0] == graph.num_vertices
         and set(part.tolist()) == set(range(k))),
        (f"imbalance within tolerance ({ubfactor})",
         imbalance_of(graph, part, k) <= ubfactor + 1e-9),
        ("result flagged degraded", bool(result.extras.get("degraded"))),
        (f"faults were injected ({injected})", injected > 0),
        (f"recoveries were taken ({recovered})", recovered > 0),
        ("ledger record carries fault metrics",
         any(key.startswith("faults.injected")
             for key in record["metrics"]["counters"])
         and any(key.startswith("faults.recovered")
                 for key in record["metrics"]["counters"])),
        ("ledger record flagged degraded",
         bool(record["run"].get("degraded"))),
    ]
    for label, passed in checks:
        print(("PASS" if passed else "FAIL"), label)
        ok = ok and passed

    # 2. Mutation: the same plan with recovery off must fail.
    try:
        api.partition(
            graph, k, method="gp-metis", seed=args.seed, ubfactor=ubfactor,
            fault_plan=plan, fault_recovery=False, gpu_threshold_min=2048,
        )
        print("FAIL mutation not detected: recovery disabled but the run "
              "still completed")
        ok = False
    except ReproError as exc:
        if getattr(exc, "injected", False):
            print(f"PASS mutation detected: recovery off -> "
                  f"{type(exc).__name__}: {exc}")
        else:
            print(f"FAIL recovery-off run died on a non-injected error: "
                  f"{type(exc).__name__}: {exc}")
            ok = False

    print("faults self-check:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_roofline(args) -> int:
    import json as json_mod

    from .obs import ledger as ledger_mod
    from .obs.hw import (
        render_kernel_table,
        render_roofline_chart,
        validate_hw_section,
    )

    if args.ledger:
        path, _, idx = args.ledger.partition(":")
        records = ledger_mod.read_ledger(path)
        try:
            record = records[int(idx) if idx else -1]
        except IndexError:
            print(f"{path}: no record at index {idx or -1} "
                  f"({len(records)} record(s))", file=sys.stderr)
            return 1
        section = record.get("hw")
        if section is None:
            print(f"record {record['run_id']} carries no hw block "
                  f"(schema {record['schema']}); re-run it under the "
                  "current code", file=sys.stderr)
            return 1
        cfg = record["config"]
        header = (f"run {record['run_id']}: {cfg['engine']} on "
                  f"{cfg['graph']} k={cfg['k']}")
    else:
        graph = read_graph(args.graph) if args.graph else gen.delaunay(
            args.n, seed=args.seed
        )
        result = api.partition(graph, args.k, method=args.method,
                               seed=args.seed)
        section = getattr(result.profiler, "hw", None)
        if section is None:
            print("engine produced no hw section", file=sys.stderr)
            return 1
        header = (f"{args.method} on {graph.name} k={args.k} "
                  f"({result.modeled_seconds:.6f} modeled s)")
    validate_hw_section(section)

    mach = section["machine"]
    print(header)
    print(f"machine: cpu={mach['cpu']}  gpu={mach['gpu']}")
    print()
    gpu = section.get("gpu")
    if gpu is not None and gpu.get("kernels"):
        if not args.no_chart:
            print(render_roofline_chart(gpu))
            print()
        print(render_kernel_table(gpu))
        print()
    elif gpu is not None:
        print("gpu: aggregate only (no per-kernel data in this record)")
        print(f"  bytes moved {gpu['bytes_moved']:.3e} B, dram util "
              f"{gpu['dram_utilization']:.2f}, compute util "
              f"{gpu['compute_utilization']:.2f}")
        print()
    else:
        print("no GPU kernels in this run (CPU-only engine)")
        print()

    cpu, mpi, pcie = section["cpu"], section["mpi"], section["pcie"]
    print(f"cpu : busy {cpu['busy_seconds']:.6f} s at util "
          f"{cpu['utilization']:.2f}  "
          f"({cpu['edge_visits']:.3g} edge visits, "
          f"{cpu['vertex_ops']:.3g} vertex ops, "
          f"{cpu['random_bytes'] / 1e6:.1f} MB random access)")
    if pcie["transfers"]:
        print(f"pcie: {pcie['transfers']} transfer(s), "
              f"{pcie['bytes'] / 1e6:.2f} MB in {pcie['seconds']:.6f} s — "
              f"util {pcie['utilization']:.2f}, "
              f"alpha share {pcie['alpha_share']:.2f}")
    if mpi["messages"]:
        print(f"mpi : {mpi['messages']:.0f} message(s), "
              f"{mpi['bytes'] / 1e6:.2f} MB — util {mpi['utilization']:.2f}")
    avoid = section.get("transfer_avoidance")
    if avoid is not None:
        print(f"transfer avoidance: {avoid:.4f} "
              "(device-resident bytes / all bytes touched)")
    if section["phases"]:
        print()
        print(f"{'phase':<16s} {'seconds':>10s} {'gpu%':>6s} {'pcie%':>6s} "
              f"{'cpu%':>6s} {'dram-util':>10s} {'pcie-util':>10s}")
        for row in section["phases"]:
            total = row["seconds"] or 1.0
            print(f"{row['phase']:<16s} {row['seconds']:>10.6f} "
                  f"{100 * row['gpu_seconds'] / total:>5.1f}% "
                  f"{100 * row['pcie_seconds'] / total:>5.1f}% "
                  f"{100 * row['cpu_seconds'] / total:>5.1f}% "
                  f"{row['gpu_dram_utilization']:>10.3f} "
                  f"{row['pcie_utilization']:>10.3f}")

    if args.json_out:
        text = json_mod.dumps(section, indent=2, sort_keys=True)
        if args.json_out == "-":
            print(text)
        else:
            with open(args.json_out, "w") as fh:
                fh.write(text + "\n")
            print(f"\nwrote {args.json_out}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "partition": _cmd_partition,
        "generate": _cmd_generate,
        "bench": _cmd_bench,
        "info": _cmd_info,
        "profile": _cmd_profile,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "slo": _cmd_slo,
        "gate": _cmd_gate,
        "analyze": _cmd_analyze,
        "sanitize": _cmd_sanitize,
        "faults": _cmd_faults,
        "roofline": _cmd_roofline,
        "serve": _cmd_serve,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

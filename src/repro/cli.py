"""Command-line interface: ``python -m repro <command>``.

Commands mirror the classic ``gpmetis`` binary plus this repo's extras:

* ``partition`` — partition a graph file (Metis/.gr/.npz) into k parts,
  write a Metis ``.part`` file, print quality and modeled time;
* ``generate`` — build a synthetic graph (Table I analogues or any
  generator family) and write it to a file;
* ``bench`` — run the paper's evaluation grid and print the tables;
* ``info`` — print a graph file's statistics;
* ``profile`` — partition under the span profiler and export the run as
  Chrome trace-event JSON (``--trace-out``, open in Perfetto) and/or a
  flat metrics JSON (``--metrics-out``), printing the ASCII span tree;
  ``--ledger runs.jsonl`` appends the run to a JSONL run ledger;
* ``compare`` — diff two ledger runs (or cohorts) with exact per-phase
  delta attribution down the span tree;
* ``report`` — render a ledger as a self-contained HTML report (engine
  comparison tables, phase breakdowns, trend over time);
* ``gate`` — the generalized perf-regression gate: compare fresh (or
  recorded) runs against a committed baseline ledger under a
  schema-validated tolerance policy, exiting non-zero on violation;
* ``sanitize`` — self-check of the GPU data-race sanitizer: a clean
  GP-metis pipeline must come out race-free and a deliberately broken
  matching kernel (conflict resolution disabled) must be flagged.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import api
from .bench import (
    DEFAULT_SCALES,
    ExperimentConfig,
    check_paper_shape,
    render_fig5,
    render_table1,
    render_table2,
    render_table3,
    run_experiment,
)
from .graphs import (
    PAPER_DATASETS,
    evaluate_partition,
    load_dataset,
    read_graph,
    save_npz,
    write_metis,
    write_partition,
)
from .graphs import generators as gen

__all__ = ["main", "build_parser"]

_GENERATORS = {
    "grid2d": lambda n, seed: gen.grid2d(int(n**0.5) or 1, int(n**0.5) or 1),
    "delaunay": gen.delaunay,
    "rgg": gen.random_geometric,
    "road": gen.road_network,
    "bubble": gen.bubble_mesh,
    "fe": gen.fe_matrix,
    "rmat": lambda n, seed: gen.rmat(max(1, int(n).bit_length() - 1), seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    pp = sub.add_parser("partition", help="partition a graph file")
    pp.add_argument("graph", help="input .graph/.metis/.gr/.npz file")
    pp.add_argument("-k", type=int, default=64, help="number of partitions")
    pp.add_argument(
        "--method", default="gp-metis", choices=api.available_methods(),
    )
    pp.add_argument("--ubfactor", type=float, default=1.03)
    pp.add_argument("--seed", type=int, default=1)
    pp.add_argument(
        "--sanitize", action="store_true",
        help="run GPU kernels under the data-race sanitizer (gp-metis only) "
             "and print the per-launch race report",
    )
    pp.add_argument("-o", "--output", help="write a Metis .part file here")

    pg = sub.add_parser("generate", help="generate a synthetic graph")
    group = pg.add_mutually_exclusive_group(required=True)
    group.add_argument("--dataset", choices=list(PAPER_DATASETS),
                       help="a Table I analogue")
    group.add_argument("--family", choices=list(_GENERATORS),
                       help="a generator family")
    pg.add_argument("-n", type=int, default=10_000, help="vertices (family mode)")
    pg.add_argument("--scale", type=float, default=0.01, help="scale (dataset mode)")
    pg.add_argument("--seed", type=int, default=0)
    pg.add_argument("-o", "--output", required=True,
                    help="output file (.graph or .npz)")

    pb = sub.add_parser("bench", help="run the paper's evaluation grid")
    pb.add_argument("-k", type=int, default=64)
    pb.add_argument("--scale", type=float, default=1.0,
                    help="multiplier on the default dataset scales")
    pb.add_argument("--repeats", type=int, default=1)
    pb.add_argument(
        "--datasets", metavar="A,B",
        help="comma-separated subset of the paper datasets (default: all)",
    )
    pb.add_argument(
        "--methods", metavar="A,B",
        help="comma-separated subset of methods (default: all four); "
             "comparative tables and shape checks need the full grid",
    )
    pb.add_argument("-o", "--output", help="write a markdown report here")
    pb.add_argument(
        "--json", metavar="FILE", default="BENCH_results.json",
        help="write machine-readable per-engine/per-graph results here "
             "(default: BENCH_results.json)",
    )
    pb.add_argument(
        "--no-json", action="store_true",
        help="skip writing the machine-readable results file",
    )

    pi = sub.add_parser("info", help="print a graph file's statistics")
    pi.add_argument("graph")

    pf = sub.add_parser(
        "profile",
        help="partition under the span profiler and export trace/metrics",
    )
    pf.add_argument("graph", help="input .graph/.metis/.gr/.npz file")
    pf.add_argument("-k", type=int, default=64, help="number of partitions")
    pf.add_argument(
        "--method", default="gp-metis", choices=api.available_methods(),
    )
    pf.add_argument("--ubfactor", type=float, default=1.03)
    pf.add_argument("--seed", type=int, default=1)
    pf.add_argument(
        "--trace-out", metavar="FILE",
        help="write Chrome trace-event JSON here (open at ui.perfetto.dev)",
    )
    pf.add_argument(
        "--metrics-out", metavar="FILE", help="write the flat metrics JSON here"
    )
    pf.add_argument(
        "--depth", type=int, default=None,
        help="limit the printed ASCII tree to this many levels",
    )
    pf.add_argument(
        "--ledger", metavar="FILE",
        help="append this run to a JSONL run ledger (one record per run: "
             "config fingerprint, span rollup, metrics snapshot)",
    )

    pc = sub.add_parser(
        "compare",
        help="diff two ledger runs with per-phase delta attribution",
    )
    pc.add_argument(
        "run_a", help="baseline run: LEDGER.jsonl[:INDEX] (default index -1, "
                      "the newest record; ':*' averages the whole file as a cohort)",
    )
    pc.add_argument("run_b", help="current run, same forms as run_a")
    pc.add_argument(
        "--ledger", metavar="FILE",
        help="resolve bare indices / ':*' operands against this ledger file",
    )

    pr = sub.add_parser(
        "report", help="render a run ledger as a self-contained HTML report"
    )
    pr.add_argument("--ledger", metavar="FILE", required=True,
                    help="the JSONL run ledger to render")
    pr.add_argument("-o", "--output", default="report.html",
                    help="output HTML file (default: report.html)")
    pr.add_argument("--title", default="repro run ledger")

    pgate = sub.add_parser(
        "gate",
        help="perf-regression gate: current runs vs a committed baseline "
             "ledger under a tolerance policy",
    )
    pgate.add_argument(
        "--baseline", metavar="FILE", required=True,
        help="committed baseline ledger (JSONL)",
    )
    pgate.add_argument(
        "--policy", metavar="FILE",
        help="gate policy JSON (schema repro.obs.gate-policy/1); "
             "defaults to phases+total+cut at 10%%",
    )
    pgate.add_argument(
        "--current", metavar="FILE",
        help="compare these recorded runs instead of freshly profiling "
             "the standard gate workload",
    )
    pgate.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline ledger from the current runs and exit 0",
    )

    pa = sub.add_parser("analyze", help="structural profile + cut bounds")
    pa.add_argument("graph")
    pa.add_argument("-k", type=int, default=64,
                    help="partition count for the cut lower bounds")

    ps = sub.add_parser("sanitize", help="data-race sanitizer self-check")
    ps.add_argument("-n", type=int, default=9000,
                    help="vertices of the clean-run test graph")
    ps.add_argument("--schedules", type=int, default=3,
                    help="fuzzed thread schedules per kernel launch")
    ps.add_argument("--seed", type=int, default=1)
    return p


def _cmd_partition(args) -> int:
    graph = read_graph(args.graph)
    print(f"input: {graph}")
    opts = {}
    if args.sanitize:
        if args.method not in ("gp-metis", "gpmetis", "gp_metis"):
            print("--sanitize requires --method gp-metis", file=sys.stderr)
            return 2
        opts["sanitize"] = True
    t0 = time.perf_counter()
    result = api.partition(
        graph, args.k, method=args.method, ubfactor=args.ubfactor,
        seed=args.seed, **opts,
    )
    wall = time.perf_counter() - t0
    q = evaluate_partition(graph, result.part, args.k)
    print(f"method={args.method} k={args.k}")
    print(f"edge cut      : {q.cut}")
    print(f"imbalance     : {q.imbalance:.4f} (tolerance {args.ubfactor})")
    print(f"comm volume   : {q.comm_volume}")
    print(f"modeled time  : {result.modeled_seconds:.6f} s (simulated testbed)")
    print(f"wall time     : {wall:.3f} s (this Python process)")
    san = result.extras.get("sanitizer") if args.sanitize else None
    if san is not None:
        print(san.render())
    if args.output:
        write_partition(result.part, args.output)
        print(f"wrote {args.output}")
    return 1 if san is not None and not san.race_free else 0


def _cmd_profile(args) -> int:
    from .obs import (
        render_tree,
        validate_chrome_trace,
        validate_metrics,
        write_chrome_trace,
        write_metrics_json,
    )
    from .obs import ledger as ledger_mod

    graph = read_graph(args.graph)
    print(f"input: {graph}")
    if args.ledger:
        # Route through the finish_run hook, so the engine itself writes
        # the record — the same path any library caller gets.
        ledger_mod.set_default_ledger(args.ledger)
    try:
        result = api.partition(
            graph, args.k, method=args.method, ubfactor=args.ubfactor,
            seed=args.seed,
        )
    finally:
        if args.ledger:
            ledger_mod.set_default_ledger(None)
    profiler = result.profiler
    if profiler is None:
        print(f"method {args.method!r} does not attach a profiler", file=sys.stderr)
        return 2
    print(render_tree(profiler, max_depth=args.depth))
    if args.ledger:
        last = ledger_mod.read_ledger(args.ledger)[-1]
        print(f"appended run {last['run_id']} to {args.ledger}")
    if args.trace_out:
        validate_chrome_trace(write_chrome_trace(profiler, args.trace_out))
        print(f"wrote {args.trace_out} (chrome trace-event; open at ui.perfetto.dev)")
    if args.metrics_out:
        validate_metrics(write_metrics_json(profiler, args.metrics_out))
        print(f"wrote {args.metrics_out}")
    return 0


def _resolve_runs(operand: str, default_ledger: str | None):
    """A ``compare`` operand -> list of ledger records.

    Forms: ``PATH``, ``PATH:INDEX``, ``PATH:*`` (whole-file cohort), and
    with ``--ledger`` also bare ``INDEX`` / ``*``.
    """
    from .obs import read_ledger

    path, _, selector = operand.rpartition(":")
    if not path:
        # No ':' in the operand: a bare path, or (with --ledger) a selector.
        if default_ledger and (operand == "*" or _is_int(operand)):
            path, selector = default_ledger, operand
        else:
            path, selector = operand, "-1"
    elif not selector or not (selector == "*" or _is_int(selector)):
        path, selector = operand, "-1"
    records = read_ledger(path)
    if not records:
        raise ValueError(f"{path}: ledger is empty")
    if selector == "*":
        return records
    index = int(selector)
    try:
        return [records[index]]
    except IndexError:
        raise ValueError(
            f"{path}: index {index} out of range ({len(records)} records)"
        ) from None


def _is_int(text: str) -> bool:
    try:
        int(text)
    except ValueError:
        return False
    return True


def _cmd_compare(args) -> int:
    from .obs import aggregate_records, compare_runs, render_comparison

    try:
        base = aggregate_records(_resolve_runs(args.run_a, args.ledger))
        cur = aggregate_records(_resolve_runs(args.run_b, args.ledger))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_comparison(compare_runs(base, cur)))
    return 0


def _cmd_report(args) -> int:
    from .obs import read_ledger, write_html_report

    try:
        records = read_ledger(args.ledger)
        write_html_report(records, args.output, title=args.title)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"wrote {args.output} ({len(records)} run(s); self-contained HTML, "
        "open in any browser)"
    )
    return 0


def _cmd_gate(args) -> int:
    import json
    import pathlib

    from .obs import (
        DEFAULT_POLICY,
        collect_workload_records,
        evaluate_gate,
        load_policy,
        read_ledger,
        render_gate,
    )

    try:
        policy = load_policy(args.policy) if args.policy else DEFAULT_POLICY
    except (OSError, ValueError) as exc:
        print(f"error: bad policy: {exc}", file=sys.stderr)
        return 2

    if args.current:
        current = read_ledger(args.current)
        print(f"current: {len(current)} recorded run(s) from {args.current}")
    else:
        print("collecting the standard gate workload "
              "(see repro.bench.baseline.BaselineConfig)...")
        current = collect_workload_records()

    baseline_path = pathlib.Path(args.baseline)
    if args.update or not baseline_path.exists():
        with open(baseline_path, "w") as fh:
            for record in current:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        print(f"wrote baseline ledger {baseline_path} ({len(current)} run(s))")
        return 0

    baseline = read_ledger(baseline_path)
    violations, checks, notes = evaluate_gate(policy, baseline, current)
    print(render_gate(violations, checks, notes))
    return 1 if violations else 0


def _cmd_generate(args) -> int:
    if args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    else:
        graph = _GENERATORS[args.family](args.n, args.seed)
    print(f"generated: {graph}")
    if str(args.output).endswith(".npz"):
        save_npz(graph, args.output)
    else:
        write_metis(graph, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_bench(args) -> int:
    from .bench import DEFAULT_METHODS

    extra = {}
    if args.datasets:
        extra["datasets"] = tuple(args.datasets.split(","))
    if args.methods:
        extra["methods"] = tuple(args.methods.split(","))
    cfg = ExperimentConfig(
        k=args.k,
        repeats=args.repeats,
        scales={name: s * args.scale for name, s in DEFAULT_SCALES.items()},
        **extra,
    )
    results = run_experiment(cfg, verbose=True)
    full_grid = set(DEFAULT_METHODS) <= set(cfg.methods)
    print()
    blocks = [render_table1(results)]
    if full_grid:
        blocks += [render_fig5(results), render_table2(results), render_table3(results)]
    for block in blocks:
        print(block)
        print()
    failed = []
    if full_grid:
        failed = [c for c in check_paper_shape(results) if not c.holds]
        for c in check_paper_shape(results):
            print(("PASS" if c.holds else "FAIL"), c.claim)
    if args.output:
        from .bench import write_report

        write_report(results, args.output)
        print(f"wrote {args.output}")
    if args.json and not args.no_json:
        from .bench import write_results_json

        write_results_json(results, args.json)
        print(f"wrote {args.json} (machine-readable per-engine results)")
    return 1 if failed else 0


def _cmd_info(args) -> int:
    graph = read_graph(args.graph)
    deg = graph.degrees()
    print(f"name            : {graph.name}")
    print(f"vertices        : {graph.num_vertices}")
    print(f"edges           : {graph.num_edges}")
    print(f"avg degree      : {2 * graph.num_edges / max(1, graph.num_vertices):.2f}")
    print(f"max degree      : {graph.max_degree}")
    print(f"total vwgt      : {graph.total_vertex_weight}")
    print(f"total ewgt      : {graph.total_edge_weight}")
    print(f"memory (CSR)    : {graph.nbytes} bytes")
    if graph.num_vertices:
        comps = len(set(graph.connected_components().tolist()))
        print(f"components      : {comps}")
    return 0


def _cmd_analyze(args) -> int:
    from .graphs import (
        perfect_balance_cut_lower_bound,
        profile_graph,
        spectral_cut_lower_bound,
    )

    graph = read_graph(args.graph)
    p = profile_graph(graph)
    print(p.describe())
    print(f"degree cv       : {p.degree_cv:.3f}")
    print(f"avg bandwidth   : {p.avg_bandwidth:.1f}")
    print(f"index locality  : {p.index_locality:.3f} "
          "(fraction of arcs within +-64 ids; drives GPU coalescing)")
    print(f"components      : {p.components}")
    print(f"weighted        : edges={p.weighted_edges} vertices={p.weighted_vertices}")
    spectral = spectral_cut_lower_bound(graph, args.k)
    degree = perfect_balance_cut_lower_bound(graph, args.k)
    print(f"cut lower bounds (k={args.k}): spectral >= {spectral:.1f}, "
          f"degree >= {degree}")
    return 0


def _cmd_sanitize(args) -> int:
    """Self-check the race sanitizer: clean pipeline, then a planted race."""
    import numpy as np

    from .gpmetis.kernels.matching import gpu_match
    from .gpusim.device import Device
    from .gpusim.transfer import transfer_graph_to_device
    from .runtime.clock import SimClock
    from .runtime.machine import PAPER_MACHINE

    if args.schedules < 1:
        print("--schedules must be >= 1", file=sys.stderr)
        return 2
    if args.n < 3000:
        print(f"-n {args.n} is below the GPU threshold; the clean-run check "
              "needs a graph the GPU path actually executes (>= 3000)",
              file=sys.stderr)
        return 2

    ok = True

    # 1. The full GP-metis pipeline must be race-free under fuzzing.
    graph = gen.delaunay(args.n, seed=args.seed)
    result = api.partition(
        graph, 8, method="gp-metis", seed=args.seed,
        sanitize=True, fuzz_schedules=args.schedules, gpu_threshold_min=2048,
    )
    san = result.extras["sanitizer"]
    print(san.summary())
    kernels = san.kernels_checked()
    families = sorted({name.split(".")[-1].split("_")[0] for name in kernels})
    print(f"kernels checked: {sorted(kernels)}")
    if not san.race_free:
        print("FAIL clean pipeline reported races:")
        for r in san.racy_reports:
            print(r.render())
        ok = False
    else:
        print(f"PASS clean pipeline race-free ({len(san.reports)} launches, "
              f"families: {', '.join(families)})")
    if not any(n.startswith("coarsen.match") for n in kernels):
        print("FAIL clean run never reached the GPU matching kernel")
        ok = False

    # 2. Disabling conflict resolution must be caught (mutation self-check).
    star = gen.star_graph(64)
    dev = Device(PAPER_MACHINE.gpu, SimClock())
    mut = dev.enable_sanitizer(fuzz_schedules=args.schedules, seed=args.seed)
    d_csr = transfer_graph_to_device(dev, star, PAPER_MACHINE.interconnect)
    gpu_match(
        dev, d_csr, star, n_threads=32, scheme="hem",
        rng=np.random.default_rng(args.seed), resolve_conflicts=False,
    )
    if mut.num_races:
        kinds = sorted({
            f.kind for r in mut.racy_reports for f in r.findings
            if f.severity == "race"
        })
        print(f"PASS mutation detected: {mut.num_races} race(s) "
              f"({', '.join(kinds)}) with resolution disabled")
    else:
        print("FAIL mutation not detected: resolution disabled but no race flagged")
        ok = False

    print("sanitizer self-check:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "partition": _cmd_partition,
        "generate": _cmd_generate,
        "bench": _cmd_bench,
        "info": _cmd_info,
        "profile": _cmd_profile,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "gate": _cmd_gate,
        "analyze": _cmd_analyze,
        "sanitize": _cmd_sanitize,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""GP-Metis reproduction: parallel multilevel graph partitioning on a
(simulated) CPU-GPU architecture.

Reproduces *Parallel Graph Partitioning on a CPU-GPU Architecture*
(Goodarzi, Burtscher, Goswami; IPPS 2016): the GP-metis hybrid
partitioner, its three comparators (serial Metis, ParMetis, mt-metis),
and the evaluation harness for the paper's tables and figures — with the
CUDA GPU, the 8-core CPU, and the MPI cluster replaced by calibrated
simulators (see DESIGN.md for the substitution argument).

Quick start::

    import repro
    g = repro.graphs.load_dataset("delaunay", scale=0.01)
    result = repro.partition(g, k=64, method="gp-metis")
    print(result.summary(g))
"""

from . import (
    apps,
    baselines,
    bench,
    exceptions,
    gmetis,
    gpmetis,
    gpusim,
    graphs,
    jostle,
    mtmetis,
    obs,
    parmetis,
    ptscotch,
    runtime,
    serial,
    service,
)
from .api import (
    PARTITIONERS,
    available_methods,
    make_partitioner,
    partition,
    resolve_method,
    resolve_options,
)
from .exceptions import (
    CommunicationError,
    DeviceMemoryError,
    GraphFormatError,
    InvalidGraphError,
    InvalidParameterError,
    KernelLaunchError,
    PartitioningError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from .gpmetis import GPMetis, GPMetisOptions
from .graphs import CSRGraph, load_dataset
from .mtmetis import MtMetis, MtMetisOptions
from .parmetis import ParMetis, ParMetisOptions
from .result import PartitionResult
from .runtime import PAPER_MACHINE, MachineSpec
from .serial import SerialMetis, SerialOptions
from .service import PartitionRequest, PartitionService, ServiceConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "partition",
    "make_partitioner",
    "available_methods",
    "resolve_method",
    "resolve_options",
    "PARTITIONERS",
    "PartitionRequest",
    "PartitionService",
    "ServiceConfig",
    "PartitionResult",
    "CSRGraph",
    "load_dataset",
    "SerialMetis",
    "SerialOptions",
    "ParMetis",
    "ParMetisOptions",
    "MtMetis",
    "MtMetisOptions",
    "GPMetis",
    "GPMetisOptions",
    "MachineSpec",
    "PAPER_MACHINE",
    "ReproError",
    "GraphFormatError",
    "InvalidGraphError",
    "PartitioningError",
    "InvalidParameterError",
    "DeviceMemoryError",
    "KernelLaunchError",
    "CommunicationError",
    "ServiceError",
    "ServiceOverloadedError",
    "graphs",
    "serial",
    "runtime",
    "obs",
    "gpusim",
    "mtmetis",
    "parmetis",
    "gpmetis",
    "bench",
    "exceptions",
    "apps",
    "baselines",
    "ptscotch",
    "jostle",
    "gmetis",
    "service",
]

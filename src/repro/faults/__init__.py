"""Deterministic fault injection with graceful degradation.

``repro.faults`` makes the simulated hardware *unreliable on demand*: a
seeded :class:`FaultPlan` decides which injection sites fire (device
OOM and capacity squeezes, failed/corrupt PCIe copies, kernel aborts
and timeouts, worker stalls, dropped/duplicated MPI messages), the
:class:`FaultInjector` executes it deterministically against one run,
and the engines respond through a retry/backoff layer plus per-engine
degradation ladders — GP-metis retries transients, shrinks its GPU
working set on OOM, and falls back to the mt-metis CPU path when the
GPU phase is unrecoverable, always returning a valid partition with a
``degraded`` flag.

Entry points:

* options: every engine takes ``fault_plan=...`` (a plan, dict, or JSON
  path) and ``fault_recovery=True/False``;
* CLI: ``python -m repro faults`` (run under a plan, print the fault and
  recovery log) and ``python -m repro faults --self-check``;
* docs: ``docs/FAULTS.md`` documents the sites, the plan schema and each
  engine's degradation ladder.
"""

from .injector import DEGRADING_ACTIONS, FaultEvent, FaultInjector, attach_injector
from .plan import (
    FAULT_PLAN_SCHEMA,
    SITES,
    FaultPlan,
    FaultSpec,
    load_plan,
    validate_fault_plan,
)
from .retry import RetryPolicy, with_retry

__all__ = [
    "FAULT_PLAN_SCHEMA",
    "SITES",
    "DEGRADING_ACTIONS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "attach_injector",
    "load_plan",
    "validate_fault_plan",
    "with_retry",
]

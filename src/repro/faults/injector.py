"""The deterministic fault injector.

One :class:`FaultInjector` is attached per run to the engine's
:class:`~repro.runtime.clock.SimClock` (``clock.injector``, mirroring
``clock.profiler``), where every simulated substrate that shares the
clock — the device allocator, kernel launcher, PCIe transfers, the
thread pool and the MPI layer — can reach it without new plumbing.

Each :class:`~repro.faults.plan.FaultSpec` owns an independent seeded
random stream (``default_rng([plan.seed, spec_index])``), so whether a
site fires depends only on the plan and on how many times *that* site
was checked — never on unrelated sites or dict ordering.  Every firing
and every recovery action is appended to :attr:`events` and, when a
profiler observes the clock, emitted as an instant obs span
(``category="fault"`` / ``category="recovery"``), which is how fault
schedules land in the run ledger.

The injector also carries the run's single recovery switch
(:attr:`recover`): engines consult it before retrying or degrading, and
``python -m repro faults --self-check`` flips it off to prove the
recovery machinery is what keeps a faulted run alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import (
    DeviceMemoryError,
    KernelAbortError,
    MessageLossError,
    TransferError,
    WorkerStallError,
)
from .plan import FaultPlan, FaultSpec, load_plan

__all__ = ["FaultEvent", "FaultInjector", "attach_injector"]

#: Recovery actions that change the execution path (vs. merely costing
#: time); any of these marks the run result ``degraded``.
DEGRADING_ACTIONS = frozenset(
    {"cpu-fallback", "gpu-shrink", "skip-gpu-refine", "work-steal"}
)

#: site -> exception type raised for its hard-failure kinds.
_RAISES = {
    "gpu.alloc": DeviceMemoryError,
    "kernel.launch": KernelAbortError,
    "transfer.h2d": TransferError,
    "transfer.d2h": TransferError,
    "thread.stall": WorkerStallError,
    "mpi.message": MessageLossError,
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or one recovery action, in simulated time."""

    t: float
    site: str
    kind: str
    detail: str = ""
    #: "fault" for an injection, "recovery" for an engine response.
    category: str = "fault"

    def render(self) -> str:
        tag = "FAULT  " if self.category == "fault" else "RECOVER"
        detail = f" ({self.detail})" if self.detail else ""
        return f"  [{self.t:.6f}s] {tag} {self.site}/{self.kind}{detail}"


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically against one run."""

    def __init__(self, plan: FaultPlan, recover: bool = True, clock=None) -> None:
        self.plan = plan
        self.recover = recover
        self.clock = clock
        self.events: list[FaultEvent] = []
        self._fires = [0] * len(plan.specs)
        self._rngs = [
            np.random.default_rng([0xFA17, int(plan.seed), i])
            for i in range(len(plan.specs))
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def faults_injected(self) -> int:
        return sum(1 for e in self.events if e.category == "fault")

    @property
    def recoveries(self) -> int:
        return sum(1 for e in self.events if e.category == "recovery")

    @property
    def degraded(self) -> bool:
        """True when any recovery changed the execution path."""
        return any(
            e.category == "recovery" and e.kind in DEGRADING_ACTIONS
            for e in self.events
        )

    def render(self) -> str:
        if not self.events:
            return "  (no faults fired)"
        return "\n".join(e.render() for e in self.events)

    # ------------------------------------------------------------------
    # Decision + recording
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.clock.total_seconds if self.clock is not None else 0.0

    def _record(self, site: str, kind: str, detail: str, category: str) -> FaultEvent:
        event = FaultEvent(self._now(), site, kind, detail, category)
        self.events.append(event)
        profiler = getattr(self.clock, "profiler", None)
        if profiler is not None:
            profiler.add_span(
                f"{category}.{site}.{kind}",
                event.t,
                event.t,
                category=category,
                site=site,
                kind=kind,
                detail=detail,
            )
        return event

    def fire(self, site: str, detail: str = "") -> list[FaultSpec]:
        """All specs at ``site`` that fire for this operation, recorded.

        Each matching spec draws from its own stream and honours its
        ``max_fires`` cap; the returned list is usually empty (the fast
        path costs one loop over the plan's specs).
        """
        fired: list[FaultSpec] = []
        for i, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if spec.match and spec.match not in detail:
                continue
            if spec.max_fires and self._fires[i] >= spec.max_fires:
                continue
            if spec.probability < 1.0 and self._rngs[i].random() >= spec.probability:
                continue
            self._fires[i] += 1
            self._record(site, spec.kind, detail, "fault")
            fired.append(spec)
        return fired

    def record_recovery(self, site: str, action: str, detail: str = "") -> None:
        """Log one engine recovery action (retry, fallback, dedup, ...)."""
        self._record(site, action, detail, "recovery")

    # ------------------------------------------------------------------
    # Site helpers (one per substrate hook, to keep call sites tiny)
    # ------------------------------------------------------------------
    def raise_for(self, spec: FaultSpec, detail: str = "") -> None:
        """Raise the site's exception type, tagged as injected."""
        exc = _RAISES[spec.site](
            f"injected {spec.kind} at {spec.site}"
            + (f" ({detail})" if detail else "")
        )
        exc.injected = True
        exc.site = spec.site
        exc.kind = spec.kind
        raise exc

    def capacity_bytes(self, default: int) -> int:
        """Device capacity after any ``gpu.capacity``/``squeeze`` spec.

        The squeeze is a standing condition, not an event: the factor
        applies for the whole run and is recorded once, on first use.
        """
        factor = 1.0
        for i, spec in enumerate(self.plan.specs):
            if spec.site != "gpu.capacity":
                continue
            if self._fires[i] == 0:
                if spec.probability < 1.0 and (
                    self._rngs[i].random() >= spec.probability
                ):
                    self._fires[i] = -1  # decided: never squeezes
                    continue
                self._fires[i] = 1
                self._record(
                    "gpu.capacity", "squeeze", f"factor={spec.factor}", "fault"
                )
            if self._fires[i] > 0:
                factor = min(factor, spec.factor)
        return int(default * factor)


def attach_injector(clock, plan, recover: bool = True) -> FaultInjector | None:
    """Build an injector from a plan source and attach it to ``clock``.

    ``plan`` may be ``None`` (returns ``None``: the zero-overhead default
    path), a :class:`FaultPlan`, a plan dict, or a JSON file path —
    whatever the engine's ``fault_plan`` option carries.
    """
    plan = load_plan(plan)
    if not plan.specs:
        return None
    injector = FaultInjector(plan, recover=recover, clock=clock)
    clock.injector = injector
    return injector

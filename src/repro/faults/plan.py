"""Fault plans: the declarative "what can go wrong" of a run.

A :class:`FaultPlan` is a seeded, schema-validated list of
:class:`FaultSpec` entries.  Each spec names one *injection site* (a
stable string like ``transfer.h2d`` — see :data:`SITES`), a fault *kind*
(what happens when the site fires), a firing probability, and a cap on
how many times it may fire.  Given the same plan (same seed, same
specs), the injector makes bit-identical decisions run after run — a
fault schedule is as reproducible as the partition itself.

Plans come from three places:

* hand-written JSON (``python -m repro faults --plan plan.json``);
* a seed (:func:`FaultPlan.from_seed`, ``--fault-seed N``): a small
  random plan drawn deterministically over all sites;
* :func:`FaultPlan.full`: one spec per site/kind — the worst-case
  storm the ``--self-check`` must survive.

Schema (``repro.faults.plan/1``)::

    {
      "schema": "repro.faults.plan/1",
      "seed": 7,
      "specs": [
        {"site": "transfer.h2d", "kind": "fail",
         "probability": 1.0, "max_fires": 1, "match": "csr"},
        {"site": "gpu.capacity", "kind": "squeeze", "factor": 0.5}
      ]
    }
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError
from ..obs.schema import SchemaError, _require

__all__ = ["FAULT_PLAN_SCHEMA", "SITES", "FaultSpec", "FaultPlan",
           "validate_fault_plan", "load_plan"]

#: Schema tag of a fault-plan JSON document.
FAULT_PLAN_SCHEMA = "repro.faults.plan/1"

#: Injection site -> fault kinds it understands.
SITES: dict[str, tuple[str, ...]] = {
    # Device memory: allocation failure, or a capacity squeeze that
    # shrinks the device's usable global memory for the whole run.
    "gpu.alloc": ("oom",),
    "gpu.capacity": ("squeeze",),
    # Kernel launches: hard abort, or a watchdog timeout (charges the
    # stall time, then aborts the launch).
    "kernel.launch": ("abort", "timeout"),
    # PCIe copies: outright failure, or corruption caught by the
    # transfer-layer checksum (both surface as TransferError).
    "transfer.h2d": ("fail", "corrupt"),
    "transfer.d2h": ("fail", "corrupt"),
    # Shared-memory workers: a slow straggler (charges barrier time), or
    # a stall past the deadlock watchdog.
    "thread.stall": ("stall", "deadlock"),
    # MPI messages: a dropped message (recovered by retransmission) or a
    # duplicated one (recovered by receiver-side dedup).
    "mpi.message": ("drop", "duplicate"),
}

#: Kinds that consume simulated time when they fire (timeout/stall).
_TIMED_KINDS = {"timeout": 2e-3, "stall": 5e-4}


@dataclass(frozen=True)
class FaultSpec:
    """One kind of fault at one injection site."""

    site: str
    kind: str
    #: Chance the site fires on each check (drawn from the spec's own
    #: seeded stream, so specs never perturb each other's decisions).
    probability: float = 1.0
    #: Total firings allowed across the run; 0 means unlimited — an
    #: unlimited "fail" spec makes the site *persistently* broken, which
    #: is what pushes an engine down its degradation ladder.
    max_fires: int = 1
    #: Substring filter on the operation label (e.g. only ``csr.adjncy``
    #: transfers); empty matches everything at the site.
    match: str = ""
    #: Simulated seconds consumed by timed kinds (timeout/stall).
    seconds: float = 0.0
    #: Capacity multiplier for ``gpu.capacity``/``squeeze``.
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise InvalidParameterError(
                f"unknown fault site {self.site!r}; sites: {', '.join(SITES)}"
            )
        if self.kind not in SITES[self.site]:
            raise InvalidParameterError(
                f"site {self.site!r} does not support kind {self.kind!r}; "
                f"kinds: {', '.join(SITES[self.site])}"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise InvalidParameterError("probability must be in [0, 1]")
        if self.max_fires < 0:
            raise InvalidParameterError("max_fires must be >= 0 (0 = unlimited)")
        if self.seconds < 0:
            raise InvalidParameterError("seconds must be >= 0")
        if not (0.0 < self.factor <= 1.0):
            raise InvalidParameterError("factor must be in (0, 1]")
        if self.seconds == 0.0 and self.kind in _TIMED_KINDS:
            object.__setattr__(self, "seconds", _TIMED_KINDS[self.kind])

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs; the unit the CLI and options carry."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        # Accept lists (JSON) but store a hashable tuple.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        """Build (and validate) a plan from its JSON document."""
        validate_fault_plan(doc)
        specs = tuple(
            FaultSpec(**{k: v for k, v in spec.items()}) for spec in doc["specs"]
        )
        return cls(seed=int(doc.get("seed", 0)), specs=specs)

    @classmethod
    def from_seed(cls, seed: int, intensity: float = 0.5) -> "FaultPlan":
        """A deterministic random plan over all sites (``--fault-seed``).

        ``intensity`` in (0, 1] scales how many site/kind pairs join the
        plan and how often they may fire.  The draw uses its own
        generator, so the plan depends only on ``(seed, intensity)``.
        """
        import numpy as np

        if not (0.0 < intensity <= 1.0):
            raise InvalidParameterError("intensity must be in (0, 1]")
        rng = np.random.default_rng([0x5EED, int(seed)])
        specs = []
        for site, kinds in sorted(SITES.items()):
            for kind in kinds:
                if rng.random() >= intensity:
                    continue
                specs.append(
                    FaultSpec(
                        site=site,
                        kind=kind,
                        probability=round(0.25 + 0.75 * float(rng.random()), 3),
                        max_fires=int(rng.integers(1, 4)),
                        factor=0.5 if kind == "squeeze" else 1.0,
                    )
                )
        return cls(seed=int(seed), specs=tuple(specs))

    @classmethod
    def full(cls, seed: int = 0) -> "FaultPlan":
        """The worst-case storm: every site, every kind, firing for sure.

        ``transfer.*``/``fail`` specs are *unlimited* (persistently broken
        PCIe), so retries cannot mask them — the engine must walk its full
        degradation ladder.  This is the plan ``--self-check`` runs under.
        """
        specs = []
        for site, kinds in sorted(SITES.items()):
            for kind in kinds:
                unlimited = site.startswith("transfer.") and kind == "fail"
                specs.append(
                    FaultSpec(
                        site=site,
                        kind=kind,
                        probability=1.0,
                        max_fires=0 if unlimited else 2,
                        factor=0.5 if kind == "squeeze" else 1.0,
                    )
                )
        return cls(seed=int(seed), specs=tuple(specs))

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "specs": [s.to_json() for s in self.specs],
        }

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}, {len(self.specs)} spec(s)):"]
        for s in self.specs:
            cap = "unlimited" if s.max_fires == 0 else f"<= {s.max_fires}"
            extra = f" match={s.match!r}" if s.match else ""
            if s.kind == "squeeze":
                extra += f" factor={s.factor}"
            if s.seconds:
                extra += f" seconds={s.seconds}"
            lines.append(
                f"  {s.site:16s} {s.kind:10s} p={s.probability:<5g} "
                f"fires {cap}{extra}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def validate_fault_plan(doc: dict) -> None:
    """Structural validation of a fault-plan JSON document."""
    _require(isinstance(doc, dict), "fault plan must be an object")
    _require(
        doc.get("schema") == FAULT_PLAN_SCHEMA,
        f"schema must be {FAULT_PLAN_SCHEMA!r}",
    )
    _require(
        isinstance(doc.get("seed", 0), int), "seed must be an integer"
    )
    specs = doc.get("specs")
    _require(isinstance(specs, list), "fault plan must carry a specs list")
    for i, spec in enumerate(specs):
        _require(isinstance(spec, dict), f"spec {i} must be an object")
        site = spec.get("site")
        _require(
            site in SITES,
            f"spec {i}: unknown site {site!r} (sites: {', '.join(SITES)})",
        )
        kind = spec.get("kind")
        _require(
            kind in SITES[site],
            f"spec {i}: site {site!r} does not support kind {kind!r}",
        )
        unknown = set(spec) - {
            "site", "kind", "probability", "max_fires", "match", "seconds", "factor"
        }
        _require(not unknown, f"spec {i}: unknown keys {sorted(unknown)}")
        try:
            FaultSpec(**spec)
        except InvalidParameterError as exc:
            raise SchemaError(f"spec {i}: {exc}") from None


def load_plan(source) -> FaultPlan:
    """A :class:`FaultPlan` from a plan object, dict, or JSON file path."""
    if source is None:
        return FaultPlan()
    if isinstance(source, FaultPlan):
        return source
    if isinstance(source, dict):
        return FaultPlan.from_json(source)
    with open(source) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{source}: not valid JSON: {exc}") from exc
    return FaultPlan.from_json(doc)

"""Retry with exponential backoff over simulated time.

The first rung of every engine's degradation ladder: transient faults
(failed/corrupt PCIe copies, dropped messages) are retried a bounded
number of times, each attempt separated by an exponentially growing
backoff that is *charged to the simulated clock* — recovering from
faults costs modeled time, exactly like the real system it stands for.

When the injector's recovery switch is off, or the retry budget runs
out, the last exception propagates and the caller moves to the next
rung (shrink the GPU working set, fall back to the CPU path, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReproError

__all__ = ["RetryPolicy", "with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff (defaults: 3 retries, 0.1 ms doubling)."""

    max_retries: int = 3
    backoff_seconds: float = 1e-4
    backoff_factor: float = 2.0

    def backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)


def with_retry(
    fn,
    clock,
    site: str,
    policy: RetryPolicy | None = None,
    retryable: tuple[type[BaseException], ...] = (ReproError,),
    detail: str = "",
):
    """Run ``fn`` retrying injected transient faults under ``policy``.

    Retries happen only while the clock carries an injector whose
    recovery switch is on; without one, the first exception propagates
    untouched (the fault-free fast path adds no try/except overhead
    beyond this wrapper).  Backoff is charged to the clock under the
    ``sync`` category and every retry is recorded as a recovery event.
    """
    injector = getattr(clock, "injector", None)
    if injector is None:
        return fn()
    policy = policy or RetryPolicy()
    attempt = 0
    while True:
        t0 = clock.total_seconds
        try:
            return fn()
        except retryable as exc:
            if not injector.recover:
                raise
            attempt += 1
            if attempt > policy.max_retries:
                raise
            # The failed attempt's own charges (e.g. the PCIe latency a
            # failed copy burned) are retry cost, not useful transfer
            # time: cover them with a retry-category span so latency
            # attribution can move them into the ``retry`` bucket.
            prof = getattr(clock, "profiler", None)
            if prof is not None and clock.total_seconds > t0:
                prof.add_span(
                    f"retry {site} attempt", t0, clock.total_seconds,
                    category="retry", attempt=attempt,
                )
            # The backoff charge as a span, so retries show up in the
            # run's trace (and in request critical paths) with the same
            # trace context as the work being retried.
            from ..obs.spans import clock_span

            with clock_span(
                clock, f"retry {site}", category="retry",
                attempt=attempt, max_retries=policy.max_retries,
            ):
                clock.charge(
                    "sync", policy.backoff(attempt), count=1.0,
                    detail=f"retry backoff {site}"
                    + (f" {detail}" if detail else ""),
                )
            injector.record_recovery(
                site, "retry",
                f"attempt {attempt}/{policy.max_retries}: {exc}",
            )

"""The result record every partitioner returns."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graphs.csr import CSRGraph
from .graphs.metrics import PartitionQuality, evaluate_partition
from .runtime.clock import SimClock
from .runtime.trace import Trace

__all__ = ["PartitionResult"]


@dataclass
class PartitionResult:
    """Output of one partitioner run.

    ``part[v]`` is the partition of vertex ``v``.  ``clock`` carries the
    modeled execution time of the simulated engine(s) the partitioner ran
    on; ``wall_seconds`` is the real Python execution time (reported
    separately — the simulator is not the hardware).  ``trace`` records
    the multilevel structure; ``extras`` carries partitioner-specific
    artifacts (e.g. GPU kernel stats).
    """

    method: str
    graph_name: str
    k: int
    part: np.ndarray
    clock: SimClock
    trace: Trace
    wall_seconds: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def modeled_seconds(self) -> float:
        return self.clock.total_seconds

    @property
    def profiler(self):
        """The run's :class:`repro.obs.Profiler`, when the engine attached
        one to the clock (all multilevel partitioners do)."""
        return self.clock.profiler

    def quality(self, graph: CSRGraph) -> PartitionQuality:
        return evaluate_partition(graph, self.part, self.k)

    def summary(self, graph: CSRGraph) -> str:
        q = self.quality(graph)
        return (
            f"{self.method} on {self.graph_name}: k={self.k} cut={q.cut} "
            f"imbalance={q.imbalance:.4f} modeled={self.modeled_seconds:.6f}s "
            f"wall={self.wall_seconds:.3f}s levels={self.trace.num_levels}"
        )

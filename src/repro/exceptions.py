"""Error taxonomy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class at the API boundary.  Subclasses
partition the failure modes along the system inventory in DESIGN.md:
graph-structure problems, partitioning-parameter problems, and simulated
hardware resource exhaustion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphFormatError(ReproError):
    """A graph file or in-memory structure violates its format contract."""


class InvalidGraphError(ReproError):
    """A CSR graph failed structural validation (see CSRGraph.validate)."""


class PartitioningError(ReproError):
    """A partitioner could not produce a valid partition."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is out of range (e.g. k < 1, ubfactor < 1)."""


class DeviceMemoryError(ReproError, MemoryError):
    """The simulated GPU ran out of device memory.

    Mirrors a CUDA ``cudaErrorMemoryAllocation``: raised when an allocation
    would exceed the device's configured capacity.  The hybrid driver
    catches this to fall back to CPU-only execution, as the paper's Sec. III
    notes larger-than-memory graphs are out of scope ("future work").
    """


class KernelLaunchError(ReproError):
    """A simulated kernel was launched with an invalid configuration."""


class CommunicationError(ReproError):
    """A simulated MPI operation was used incorrectly (rank/tag mismatch)."""


class TransferError(ReproError):
    """A host<->device PCIe copy failed or arrived corrupted.

    Corruption is detected at the transfer layer (checksum over the copied
    buffer), so callers see corrupt and failed copies uniformly; both are
    retryable through :func:`repro.faults.with_retry`.
    """


class KernelAbortError(KernelLaunchError):
    """A simulated kernel launch aborted or exceeded its watchdog timeout."""


class WorkerStallError(ReproError):
    """A simulated shared-memory worker stalled past the deadlock watchdog."""


class ServiceError(ReproError):
    """The partition service could not serve a request."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request: the service queue (or the
    request's priority lane) is at capacity.

    Carries the lane, its occupancy and its limit so load drivers can
    implement backpressure (shed, retry later, or lower the priority).
    """

    def __init__(self, message: str, *, lane: int | None = None,
                 queued: int = 0, limit: int = 0) -> None:
        super().__init__(message)
        self.lane = lane
        self.queued = queued
        self.limit = limit


class MessageLossError(CommunicationError):
    """A simulated MPI message was dropped (or duplicated without dedup)."""

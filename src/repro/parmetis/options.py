"""Control parameters of the ParMetis reproduction."""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from ..serial.options import SerialOptions

__all__ = ["ParMetisOptions"]


@dataclass(frozen=True)
class ParMetisOptions:
    """Knobs of :class:`repro.parmetis.ParMetis` (paper defaults: 8 ranks)."""

    num_ranks: int = 8
    ubfactor: float = 1.03
    matching: str = "hem"
    #: Alternating-direction match passes per level ("after a few passes,
    #: a maximal set is reached").
    match_passes: int = 4
    coarsen_to_factor: int = 20
    coarsen_min: int = 64
    min_shrink: float = 0.05
    refine_passes: int = 4
    seed: int = 1
    #: Optional fault plan (see :mod:`repro.faults`): a FaultPlan, a plan
    #: dict, or a path to a plan JSON file.  ``None`` disables injection.
    fault_plan: object = None
    #: Respond to injected faults with retry/degradation (True) or let
    #: them crash the run (False — the faults self-check's mutation).
    fault_recovery: bool = True

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise InvalidParameterError("num_ranks must be >= 1")
        if self.ubfactor < 1.0:
            raise InvalidParameterError("ubfactor must be >= 1.0")
        if self.matching not in ("hem", "rm", "lem"):
            raise InvalidParameterError(f"unknown matching scheme {self.matching!r}")
        if self.match_passes < 1 or self.refine_passes < 1:
            raise InvalidParameterError("pass counts must be >= 1")

    def coarsen_target(self, k: int) -> int:
        return max(self.coarsen_min, self.coarsen_to_factor * k)

    def serial_options(self) -> SerialOptions:
        return SerialOptions(
            ubfactor=self.ubfactor,
            matching=self.matching,
            coarsen_to_factor=self.coarsen_to_factor,
            coarsen_min=self.coarsen_min,
            min_shrink=self.min_shrink,
            seed=self.seed,
        )

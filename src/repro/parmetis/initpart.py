"""ParMetis initial partitioning (Sec. II.B).

"The initial partitioning phase starts with an all-to-all broadcast of
vertices among the processors.  Each processor performs a recursive
bisection algorithm, where the processor completes one branch of the
bisection tree."

All ranks redundantly compute the root bisection, then the rank groups
split down the tree — so the critical path is one root-to-leaf chain of
bisections, about two full sweeps of the coarsest graph (the subgraph
halves at each tree level).  Quality equals the serial recursive
bisection (one trial per node).
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..runtime.mpi import MpiSim
from ..serial.bisection import recursive_bisection
from ..serial.options import SerialOptions

__all__ = ["distributed_initial_partition"]


def distributed_initial_partition(
    graph: CSRGraph,
    k: int,
    opts: SerialOptions,
    mpi: MpiSim,
    rng: np.random.Generator,
) -> np.ndarray:
    """All-to-all the coarsest graph, then parallel recursive bisection."""
    # All-to-all broadcast: every rank ends up with the whole coarse graph.
    mpi.allgather(graph.nbytes / max(1, mpi.num_ranks), detail="initpart allgather")

    part = recursive_bisection(graph, k, opts, rng=rng)

    # Critical path: one branch of the bisection tree — the subgraph halves
    # each level, so the chain sums to ~2x one full sweep set.
    sweeps = opts.gggp_trials + opts.fm_passes
    chain_edges = 2.0 * graph.num_directed_edges * sweeps
    per_rank = np.zeros(mpi.num_ranks)
    per_rank[0] = chain_edges  # every rank walks one chain; charge the max
    mpi.compute(
        per_rank, detail="recursive bisection branch",
        avg_degree=2 * graph.num_edges / max(1, graph.num_vertices),
    )
    mpi.allreduce(detail="initpart best-cut election")
    return part

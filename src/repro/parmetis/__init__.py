"""ParMetis reproduction: distributed-memory parallel multilevel partitioning."""

from .coarsen import distributed_coarsen
from .distgraph import DistGraph
from .initpart import distributed_initial_partition
from .matching import DistMatchStats, distributed_match
from .options import ParMetisOptions
from .partitioner import ParMetis
from .refinement import distributed_refine_level

__all__ = [
    "ParMetis",
    "ParMetisOptions",
    "DistGraph",
    "distributed_match",
    "DistMatchStats",
    "distributed_coarsen",
    "distributed_initial_partition",
    "distributed_refine_level",
]

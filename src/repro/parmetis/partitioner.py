"""The ParMetis driver: coarse-grained MPI multilevel partitioning."""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import InvalidParameterError
from ..faults import attach_injector
from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut, imbalance
from ..obs.hooks import finish_run, profile_run
from ..obs.spans import clock_span
from ..result import PartitionResult
from ..runtime.clock import SimClock
from ..runtime.machine import PAPER_MACHINE, MachineSpec
from ..runtime.mpi import MpiSim
from ..runtime.trace import Trace
from ..serial.kway import rebalance_pass
from ..serial.project import project_partition
from .coarsen import distributed_coarsen
from .distgraph import DistGraph
from .initpart import distributed_initial_partition
from .options import ParMetisOptions
from .refinement import distributed_refine_level

__all__ = ["ParMetis"]


class ParMetis:
    """Distributed-memory parallel multilevel k-way partitioner (ParMetis)."""

    name = "parmetis"

    def __init__(
        self,
        options: ParMetisOptions | None = None,
        machine: MachineSpec | None = None,
    ) -> None:
        self.options = options or ParMetisOptions()
        self.machine = machine or PAPER_MACHINE

    def partition(self, graph: CSRGraph, k: int) -> PartitionResult:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        opts = self.options
        clock = SimClock()
        injector = attach_injector(
            clock, opts.fault_plan, recover=opts.fault_recovery
        )
        trace = Trace()
        profiler = profile_run(
            clock, engine=self.name, graph=graph, k=k, options=self.options
        )
        mpi = MpiSim(opts.num_ranks, self.machine.cpu, self.machine.interconnect, clock)
        rng = np.random.default_rng(opts.seed)
        t0 = time.perf_counter()

        clock.set_phase("coarsening")
        dist = DistGraph.distribute(graph, opts.num_ranks)
        levels, coarsest = distributed_coarsen(dist, k, opts, mpi, trace, rng)

        clock.set_phase("initpart")
        part = distributed_initial_partition(
            coarsest.graph, k, opts.serial_options(), mpi, rng
        )

        clock.set_phase("uncoarsening")
        for level_idx in range(len(levels) - 1, -1, -1):
            level = levels[level_idx]
            with clock_span(
                clock, f"level {level_idx}", category="level",
                engine="mpi", num_vertices=level.graph.num_vertices,
            ):
                part = project_partition(part, level.cmap)
                level_dist = DistGraph.distribute(level.graph, opts.num_ranks)
                mpi.compute_vertices(
                    level_dist.per_rank_vertices(), detail=f"project L{level_idx}"
                )
                part = distributed_refine_level(
                    level_dist, part, k, opts.ubfactor, opts.refine_passes,
                    mpi, trace, level_idx,
                )

        if k > 1 and imbalance(graph, part, k) > opts.ubfactor:
            pweights = np.bincount(
                part, weights=graph.vwgt.astype(np.float64), minlength=k
            )
            ideal = graph.total_vertex_weight / k
            rebalance_pass(graph, part, pweights, k, opts.ubfactor * ideal)
            mpi.compute(
                DistGraph.distribute(graph, opts.num_ranks).per_rank_edges(),
                detail="final rebalance",
            )

        finish_run(
            profiler,
            trace=trace,
            injector=injector,
            machine=self.machine,
            cut=edge_cut(graph, part),
            imbalance=imbalance(graph, part, k),
            num_ranks=opts.num_ranks,
        )
        extras = {
            "num_ranks": opts.num_ranks,
            "messages": mpi.messages_sent,
            "message_bytes": mpi.bytes_sent,
            "supersteps": mpi.supersteps,
        }
        if injector is not None:
            extras["degraded"] = injector.degraded
            extras["fault_events"] = list(injector.events)
        return PartitionResult(
            method=self.name,
            graph_name=graph.name,
            k=k,
            part=part,
            clock=clock,
            trace=trace,
            wall_seconds=time.perf_counter() - t0,
            extras=extras,
        )

"""Distributed coarsening (ParMetis Sec. II.B).

After the match-request protocol, "the processors decide in parallel how
to collapse the vertices to create the next coarser graph."  Pairs whose
endpoints live on different ranks must ship one endpoint's adjacency list
to the other's owner; that migration volume plus the local merge work is
the level's cost.  The coarse graph itself equals the serial contraction.
"""

from __future__ import annotations

import numpy as np

from ..obs.spans import clock_span
from ..runtime.mpi import MpiSim
from ..runtime.trace import LevelRecord, Trace
from ..serial.coarsen import CoarseningLevel
from ..serial.contraction import contract
from .distgraph import DistGraph
from .matching import distributed_match
from .options import ParMetisOptions

__all__ = ["distributed_coarsen"]


def distributed_coarsen(
    dist: DistGraph,
    k: int,
    opts: ParMetisOptions,
    mpi: MpiSim,
    trace: Trace,
    rng: np.random.Generator,
) -> tuple[list[CoarseningLevel], DistGraph]:
    """Coarsen the distributed graph down to the initial-partitioning size."""
    target = opts.coarsen_target(k)
    levels: list[CoarseningLevel] = []
    current = dist
    level_idx = 0
    while current.graph.num_vertices > target:
        with clock_span(
            mpi.clock, f"level {level_idx}", category="level",
            engine="mpi", num_vertices=current.graph.num_vertices,
        ):
            match, mstats = distributed_match(
                current, mpi, scheme=opts.matching, num_passes=opts.match_passes,
                rng=rng,
            )
            # Adjacency migration for cross-rank pairs: the higher-id
            # endpoint's list moves to the lower-id endpoint's owner (8 B
            # per arc entry x 2 for the id+weight pair).
            ids = np.arange(current.graph.num_vertices, dtype=np.int64)
            cross = (match > ids) & (current.rank_of[ids] != current.rank_of[match])
            if np.any(cross):
                movers = match[cross]  # vertices whose lists migrate
                deg = (
                    current.graph.adjp[movers + 1] - current.graph.adjp[movers]
                ).astype(np.float64)
                mpi.exchange(
                    current.rank_of[movers],
                    current.rank_of[ids[cross]],
                    deg * 16.0,
                    detail=f"adjacency migration L{level_idx}",
                )
            # Local contraction work: every rank merges its pairs' lists.
            src_rank = current.arcs_src_rank()
            per_rank = np.bincount(
                src_rank, minlength=current.num_ranks
            ).astype(np.float64)
            mpi.compute(
                per_rank, detail=f"contract L{level_idx}",
                avg_degree=2 * current.graph.num_edges
                / max(1, current.graph.num_vertices),
            )

            coarse_graph, cmap = contract(current.graph, match)
        trace.levels.append(
            LevelRecord(
                level=level_idx,
                num_vertices=current.graph.num_vertices,
                num_edges=current.graph.num_edges,
                matched_pairs=mstats.pairs,
                self_matches=mstats.self_matches,
                engine="mpi",
            )
        )
        shrink = 1.0 - coarse_graph.num_vertices / current.graph.num_vertices
        levels.append(CoarseningLevel(graph=current.graph, cmap=cmap))
        current = DistGraph.distribute(coarse_graph, current.num_ranks)
        level_idx += 1
        if shrink < opts.min_shrink:
            break
    return levels, current

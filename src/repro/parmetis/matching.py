"""ParMetis's alternating-direction match-request protocol (Sec. II.B).

"The matching phase consists of two passes: in the even numbered passes,
each vertex ... sends a match request to its corresponding vertex ...
using HEM, but only if v > u.  Correspondingly, in the odd numbered
passes, a vertex sends its request only if v < u.  After a few passes, a
maximal set is reached. ... each processor sends its match requests in
one single message to the corresponding processors."

The direction filter breaks request symmetry; a target grants its best
incoming request (heaviest edge, lowest requester id on ties) — but only
if it did not itself send a request this pass, so grants never collide
with the grantee's own match.  The protocol is conflict-free by
construction, which is why ParMetis needs no resolution kernel but pays a
synchronisation per pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._segments import gather_ranges, segmented_argmax
from ..graphs.csr import CSRGraph
from ..runtime.mpi import MpiSim
from .distgraph import DistGraph

__all__ = ["DistMatchStats", "distributed_match"]


@dataclass
class DistMatchStats:
    pairs: int = 0
    self_matches: int = 0
    passes: int = 0
    requests_sent: int = 0
    remote_requests: int = 0
    edge_scans: int = 0


def _candidates_with_weights(
    graph: CSRGraph,
    vertices: np.ndarray,
    match: np.ndarray,
    scheme: str,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Best unmatched neighbor and the connecting edge weight, per vertex."""
    lens = (graph.adjp[vertices + 1] - graph.adjp[vertices]).astype(np.int64)
    flat = gather_ranges(graph.adjp[vertices], lens)
    nbrs = graph.adjncy[flat]
    valid = match[nbrs] < 0
    if scheme == "hem":
        keys = graph.adjwgt[flat].astype(np.float64)
    elif scheme == "lem":
        keys = -graph.adjwgt[flat].astype(np.float64)
    else:
        keys = rng.random(flat.shape[0])
    win = segmented_argmax(keys, lens, valid=valid)
    cand = np.full(vertices.shape[0], -1, dtype=np.int64)
    wgt = np.zeros(vertices.shape[0], dtype=np.int64)
    ok = win >= 0
    cand[ok] = nbrs[win[ok]]
    wgt[ok] = graph.adjwgt[flat[win[ok]]]
    return cand, wgt


def distributed_match(
    dist: DistGraph,
    mpi: MpiSim,
    scheme: str = "hem",
    num_passes: int = 4,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, DistMatchStats]:
    """Run the request/grant matching; returns (match, stats).

    Messages are charged per pass: one aggregated request message per
    (src rank, dst rank) with work, one grant message back, plus a
    termination allreduce.
    """
    rng = rng or np.random.default_rng(0)
    graph = dist.graph
    n = graph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    stats = DistMatchStats()

    # Uniform edge weights degenerate HEM into a deterministic lowest-id
    # preference, collapsing all requests onto a few popular targets;
    # switch to random matching, as the partitioners do (Sec. III.A).
    if (
        scheme == "hem"
        and graph.adjwgt.size
        and graph.adjwgt.min() == graph.adjwgt.max()
    ):
        scheme = "rm"

    for pass_i in range(num_passes):
        unmatched = np.where(match < 0)[0]
        if unmatched.size == 0:
            break
        stats.passes += 1
        cand, wgt = _candidates_with_weights(graph, unmatched, match, scheme, rng)
        stats.edge_scans += int(
            (graph.adjp[unmatched + 1] - graph.adjp[unmatched]).sum()
        )
        has = cand >= 0
        v = unmatched[has]
        u = cand[has]
        w = wgt[has]
        # Alternating direction filter.
        send = (v > u) if pass_i % 2 == 0 else (v < u)
        v, u, w = v[send], u[send], w[send]
        stats.requests_sent += int(v.shape[0])

        # A vertex that sent a request does not grant this pass.
        sent_mask = np.zeros(n, dtype=bool)
        sent_mask[v] = True
        grantable = ~sent_mask[u]
        v, u, w = v[grantable], u[grantable], w[grantable]

        if v.size:
            # Target grants its best incoming request.
            order = np.lexsort((v, -w, u))
            u_s, v_s = u[order], v[order]
            first = np.concatenate([[True], u_s[1:] != u_s[:-1]])
            gu, gv = u_s[first], v_s[first]
            match[gu] = gv
            match[gv] = gu
            stats.pairs += int(gu.shape[0])

        # Communication: aggregated request + grant messages.
        v_rank = dist.rank_of[v] if v.size else np.empty(0, dtype=np.int64)
        u_rank = dist.rank_of[u] if u.size else np.empty(0, dtype=np.int64)
        remote = v_rank != u_rank
        stats.remote_requests += int(remote.sum())
        # Local compute: each rank scans its unmatched vertices' lists.
        degs = (graph.adjp[unmatched + 1] - graph.adjp[unmatched]).astype(np.float64)
        per_rank = np.bincount(
            dist.rank_of[unmatched], weights=degs, minlength=dist.num_ranks
        )
        mpi.compute(
            per_rank, detail=f"match pass {pass_i}",
            avg_degree=2 * graph.num_edges / max(1, graph.num_vertices),
        )
        if v.size:
            mpi.exchange(v_rank, u_rank, np.full(v.shape[0], 16.0),
                         detail=f"match requests p{pass_i}")
            mpi.exchange(u_rank, v_rank, np.full(u.shape[0], 8.0),
                         detail=f"match grants p{pass_i}")
        mpi.allreduce(detail=f"match termination p{pass_i}")

    left = match < 0
    match[left] = np.where(left)[0]
    stats.self_matches = int(left.sum())
    return match, stats

"""Distributed-graph bookkeeping for the ParMetis port.

ParMetis distributes vertices in contiguous blocks ("initially, each
processor receives n/p vertices"); arcs whose endpoints live on different
ranks are *cut arcs* and drive all communication volumes (ghost updates,
match requests, movement requests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..runtime.mpi import block_distribution

__all__ = ["DistGraph"]


@dataclass
class DistGraph:
    """A CSR graph plus its block distribution over ranks."""

    graph: CSRGraph
    num_ranks: int
    rank_of: np.ndarray  # rank owning each vertex

    @classmethod
    def distribute(cls, graph: CSRGraph, num_ranks: int) -> "DistGraph":
        return cls(
            graph=graph,
            num_ranks=num_ranks,
            rank_of=block_distribution(graph.num_vertices, num_ranks),
        )

    # ------------------------------------------------------------------
    def arcs_src_rank(self) -> np.ndarray:
        """Owning rank of each arc's source (arcs follow adjncy order)."""
        return self.rank_of[self.graph.source_array()]

    def arcs_dst_rank(self) -> np.ndarray:
        return self.rank_of[self.graph.adjncy]

    def cut_arcs(self) -> np.ndarray:
        """Boolean mask of arcs crossing rank boundaries."""
        return self.arcs_src_rank() != self.arcs_dst_rank()

    def num_cut_arcs(self) -> int:
        return int(self.cut_arcs().sum())

    def per_rank_edges(self) -> np.ndarray:
        """Arc count owned by each rank (its local scan work)."""
        return np.bincount(
            self.arcs_src_rank(), minlength=self.num_ranks
        ).astype(np.float64)

    def per_rank_vertices(self) -> np.ndarray:
        return np.bincount(self.rank_of, minlength=self.num_ranks).astype(np.float64)

    def ghost_exchange_payload(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(src_rank, dst_rank, bytes) of one halo update.

        A boundary vertex's value (match state, partition label) is sent
        once to each remote rank holding a neighbor of it — the unique
        (vertex, remote rank) pairs, 8 bytes each, aggregated into one
        message per rank pair by the MPI model.
        """
        cut = self.cut_arcs()
        src = self.graph.source_array()[cut]
        dst_rank = self.arcs_dst_rank()[cut]
        pairs = np.unique(src * np.int64(self.num_ranks) + dst_rank)
        s = self.rank_of[(pairs // self.num_ranks).astype(np.int64)]
        d = (pairs % self.num_ranks).astype(np.int64)
        return s, d, np.full(s.shape[0], 8.0)

    def ghost_arcs_per_rank(self) -> np.ndarray:
        """Arcs each rank traverses through ghost copies: cut arcs whose
        destination it owns.  ParMetis replicates remote endpoints, so a
        rank's refinement sweep covers local + ghost arcs."""
        cut = self.cut_arcs()
        return np.bincount(
            self.arcs_dst_rank()[cut], minlength=self.num_ranks
        ).astype(np.float64)

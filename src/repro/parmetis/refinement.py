"""Distributed refinement (ParMetis Sec. II.B, un-coarsening).

"At the end of each pass, the requests for movement of vertices across
the partitions are communicated among the processors, and the movements
that do not violate the balance constraints are committed."

The move semantics are the same bulk-synchronous propose/commit scheme as
the shared-memory refinement (alternating direction, snapshot gains,
per-partition weight caps) — ParMetis pays for it in messages instead of
barriers: each pass ships movement requests and label updates for cut
arcs across ranks.
"""

from __future__ import annotations

import numpy as np

from ..graphs.metrics import edge_cut
from ..mtmetis.refinement import commit_moves, propose_balance_moves, propose_moves
from ..runtime.mpi import MpiSim
from ..runtime.trace import RefinementRecord, Trace
from .distgraph import DistGraph

__all__ = ["distributed_refine_level"]


def distributed_refine_level(
    dist: DistGraph,
    part: np.ndarray,
    k: int,
    ubfactor: float,
    max_passes: int,
    mpi: MpiSim,
    trace: Trace,
    level_idx: int,
) -> np.ndarray:
    """Refine one level on the MPI model; returns new labels."""
    graph = dist.graph
    part = np.asarray(part, dtype=np.int64).copy()
    total = graph.total_vertex_weight
    ideal = total / k if k else 0.0
    max_pw = ubfactor * ideal
    min_pw = max(0.0, (2.0 - ubfactor) * ideal)
    pweights = np.bincount(part, weights=graph.vwgt.astype(np.float64), minlength=k)

    for pass_i in range(max_passes):
        pass_committed = 0
        cut_before = edge_cut(graph, part)
        rounds: list[int] = []
        if pweights.max(initial=0.0) > max_pw:
            rounds.append(0)  # balancing superstep
        rounds += [+1, -1]
        for direction in rounds:
            if direction == 0:
                vs, ds, gs, stats = propose_balance_moves(
                    graph, part, k, pweights, max_pw
                )
            else:
                vs, ds, gs, stats = propose_moves(
                    graph, part, k, direction, pweights, max_pw, min_pw
                )
            commit_moves(
                graph, part, pweights, vs, ds, gs, k, max_pw, stats,
                recheck_gains=(direction != 0),
            )
            pass_committed += stats.committed

            # Compute: each rank scans its owned vertices' arcs plus the
            # ghost arcs it replicates (ParMetis keeps remote endpoints
            # duplicated), plus message pack/unpack work per halo item.
            halo_items = np.bincount(
                dist.ghost_exchange_payload()[0], minlength=dist.num_ranks
            ).astype(np.float64)
            mpi.compute(
                dist.per_rank_edges() + dist.ghost_arcs_per_rank()
                + 2.0 * halo_items,
                detail=f"refine scan L{level_idx}",
                avg_degree=2 * graph.num_edges / max(1, graph.num_vertices),
            )
            # Movement requests: proposals owned by one rank, decided by the
            # partition's coordinator rank (partition p -> rank p % P).
            if vs.size:
                src_rank = dist.rank_of[vs]
                dst_rank = (ds % dist.num_ranks).astype(np.int64)
                mpi.exchange(
                    src_rank, dst_rank, np.full(vs.shape[0], 24.0),
                    detail=f"move requests L{level_idx}",
                )
            # Committed labels propagate along cut arcs (halo update).
            s, d, b = dist.ghost_exchange_payload()
            mpi.exchange(s, d, b, detail=f"halo update L{level_idx}")
        cut_after = edge_cut(graph, part)
        trace.refinements.append(
            RefinementRecord(
                level=level_idx, pass_index=pass_i,
                moves_proposed=pass_committed, moves_committed=pass_committed,
                cut_before=cut_before, cut_after=cut_after, engine="mpi",
            )
        )
        if pass_committed == 0:
            break
    # Level-exit balance supersteps, as in the shared-memory engine.
    guard = 0
    while pweights.max(initial=0.0) > max_pw and guard < k:
        vs, ds, gs, stats = propose_balance_moves(graph, part, k, pweights, max_pw)
        commit_moves(
            graph, part, pweights, vs, ds, gs, k, max_pw, stats, recheck_gains=False
        )
        if vs.size:
            mpi.exchange(
                dist.rank_of[vs], (ds % dist.num_ranks).astype(np.int64),
                np.full(vs.shape[0], 24.0), detail=f"balance moves L{level_idx}",
            )
        guard += 1
        if stats.committed == 0:
            break
    return part

"""Task-interaction-graph scheduling — the paper's Sec. I motivation.

"Formally, a task interaction graph is represented by a tuple
(V, E, Wv, We), where V is the set of vertices (tasks), ... Wv is the
computation cost of task v, and We is the communication cost among the
two incident vertices.  The goal of a graph partitioning algorithm is to
divide the graph into partitions in such a way that each partition is
computationally balanced and the total communication costs (edge cuts)
among the partitions is minimized."

This module turns a partition into a processor schedule and evaluates
the quantities a runtime would observe: per-processor compute load,
inter-processor traffic, and an estimated makespan under a simple
bulk-synchronous execution model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut, partition_weights

__all__ = ["Schedule", "schedule_tasks", "random_task_graph"]


@dataclass(frozen=True)
class Schedule:
    """Assignment of tasks to processors plus its cost model."""

    processor_of_task: np.ndarray
    num_processors: int
    compute_per_processor: np.ndarray
    comm_traffic: int
    #: Makespan of one superstep: slowest processor's compute plus the
    #: communication serialised at ``comm_cost_per_unit``.
    makespan: float

    @property
    def load_imbalance(self) -> float:
        mean = self.compute_per_processor.mean()
        return float(self.compute_per_processor.max() / mean) if mean else 1.0


def schedule_tasks(
    task_graph: CSRGraph,
    num_processors: int,
    method: str = "gp-metis",
    comm_cost_per_unit: float = 0.1,
    **options,
) -> Schedule:
    """Map a task-interaction graph onto processors via partitioning.

    Task weights are compute costs, edge weights communication volumes;
    the returned schedule reports the resulting balance/traffic/makespan.
    """
    if num_processors < 1:
        raise InvalidParameterError("num_processors must be >= 1")
    from ..api import partition as _partition

    result = _partition(task_graph, num_processors, method=method, **options)
    compute = partition_weights(task_graph, result.part, num_processors).astype(
        np.float64
    )
    traffic = edge_cut(task_graph, result.part)
    makespan = float(compute.max(initial=0.0)) + comm_cost_per_unit * traffic
    return Schedule(
        processor_of_task=result.part,
        num_processors=num_processors,
        compute_per_processor=compute,
        comm_traffic=traffic,
        makespan=makespan,
    )


def random_task_graph(
    num_tasks: int, seed: int = 0, max_compute: int = 20, max_comm: int = 10
) -> CSRGraph:
    """A synthetic task-interaction graph: geometric dependency structure
    with heterogeneous compute and communication weights."""
    from ..graphs.build import from_edges
    from ..graphs.generators import random_geometric

    base = random_geometric(num_tasks, seed=seed)
    rng = np.random.default_rng(seed + 1)
    us, vs, _ = base.edge_array()
    comm = rng.integers(1, max_comm + 1, us.shape[0])
    compute = rng.integers(1, max_compute + 1, num_tasks)
    return from_edges(
        num_tasks,
        np.stack([us, vs], axis=1),
        weights=comm,
        vertex_weights=compute,
        name=f"tasks_{num_tasks}",
    )

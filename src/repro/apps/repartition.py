"""Dynamic repartitioning for adaptive computations.

The paper's Sec. I application domain — "scheduling, social networks,
and parallel processing" — usually involves *changing* workloads: an
adaptive mesh refines, task costs drift, and yesterday's partition goes
out of balance.  The operator then faces the classic trade-off:

* **scratch-remap** — partition the new weights from scratch (best cut,
  but most vertices change owner: heavy data migration);
* **diffusive repartitioning** — start from the old partition and move
  only what balance requires (minimal migration, slightly worse cut).

Both are built from this library's existing pieces; ``repartition``
returns enough information (cut, migration volume) to choose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut, imbalance
from ..mtmetis.refinement import commit_moves, propose_balance_moves, refine_level

__all__ = ["RepartitionResult", "repartition", "migration_volume"]


@dataclass(frozen=True)
class RepartitionResult:
    """Outcome of one repartitioning step."""

    part: np.ndarray
    strategy: str
    cut: int
    imbalance: float
    #: Vertex weight that changes owner relative to the old partition.
    migration: int
    migration_fraction: float


def migration_volume(graph: CSRGraph, old: np.ndarray, new: np.ndarray) -> int:
    """Total vertex weight whose owner changes between two partitions."""
    old = np.asarray(old, dtype=np.int64)
    new = np.asarray(new, dtype=np.int64)
    if old.shape[0] != graph.num_vertices or new.shape[0] != graph.num_vertices:
        raise InvalidParameterError("partitions must cover every vertex")
    return int(graph.vwgt[old != new].sum())


def _diffusive(graph: CSRGraph, old: np.ndarray, k: int, ubfactor: float,
               refine_passes: int) -> np.ndarray:
    """Rebalance the old partition in place: balance diffusion first,
    then boundary refinement to recover the cut."""
    part = np.asarray(old, dtype=np.int64).copy()
    total = graph.total_vertex_weight
    ideal = total / k if k else 0.0
    max_pw = ubfactor * ideal
    pweights = np.bincount(part, weights=graph.vwgt.astype(np.float64), minlength=k)
    guard = 0
    while pweights.max(initial=0.0) > max_pw and guard < 2 * k:
        vs, ds, gs, stats = propose_balance_moves(graph, part, k, pweights, max_pw)
        commit_moves(graph, part, pweights, vs, ds, gs, k, max_pw, stats,
                     recheck_gains=False)
        guard += 1
        if stats.committed == 0:
            break
    part, _ = refine_level(graph, part, k, ubfactor, refine_passes)
    return part


def repartition(
    graph: CSRGraph,
    old_part: np.ndarray,
    k: int,
    strategy: str = "diffusive",
    ubfactor: float = 1.03,
    refine_passes: int = 4,
    method: str = "gp-metis",
    **options,
) -> RepartitionResult:
    """Repartition ``graph`` (typically with updated vertex weights).

    ``strategy`` is ``"diffusive"`` (migrate as little as possible) or
    ``"scratch"`` (full re-partition with ``method``).
    """
    old_part = np.asarray(old_part, dtype=np.int64)
    if old_part.shape[0] != graph.num_vertices:
        raise InvalidParameterError("old_part must cover every vertex")
    if strategy == "diffusive":
        new = _diffusive(graph, old_part, k, ubfactor, refine_passes)
    elif strategy == "scratch":
        from ..api import partition as _partition

        new = _partition(graph, k, method=method, ubfactor=ubfactor, **options).part
    else:
        raise InvalidParameterError(f"unknown strategy {strategy!r}")
    mig = migration_volume(graph, old_part, new)
    return RepartitionResult(
        part=new,
        strategy=strategy,
        cut=edge_cut(graph, new),
        imbalance=imbalance(graph, new, k),
        migration=mig,
        migration_fraction=mig / max(1, graph.total_vertex_weight),
    )

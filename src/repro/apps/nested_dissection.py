"""Nested-dissection fill-reducing ordering built on the partitioner.

One of the classic downstream uses of graph partitioning (and of Metis
itself): order a sparse symmetric matrix so Cholesky factorisation fills
in less.  Recursively bisect the graph, derive a *vertex separator* from
the edge cut, order the two halves first and the separator last.

The separator comes from the bisection's boundary via a greedy
vertex-cover of the cut edges — every cut edge must have an endpoint in
the separator, and smaller separators mean less fill.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..graphs.csr import CSRGraph
from ..serial.bisection import bisect_once
from ..serial.options import SerialOptions

__all__ = [
    "NestedDissectionResult",
    "vertex_separator_from_bisection",
    "nested_dissection",
    "symbolic_fill",
    "fill_in_upper_bound",
]


@dataclass(frozen=True)
class NestedDissectionResult:
    """``perm[i]`` is the old index of the vertex ordered at position i;
    ``iperm`` is the inverse (new position of each old vertex)."""

    perm: np.ndarray
    iperm: np.ndarray
    separator_sizes: list[int]

    @property
    def total_separator_vertices(self) -> int:
        return int(sum(self.separator_sizes))


def vertex_separator_from_bisection(
    graph: CSRGraph, labels: np.ndarray
) -> np.ndarray:
    """Greedy minimum vertex cover of the cut edges of a 2-way partition.

    Repeatedly moves the boundary vertex covering the most uncovered cut
    edges into the separator.  Returns separator vertex ids.
    """
    src = graph.source_array()
    cut_mask = labels[src] != labels[graph.adjncy]
    cut_src = src[cut_mask]
    cut_dst = graph.adjncy[cut_mask]
    # Each undirected cut edge appears twice; keep one orientation.
    keep = cut_src < cut_dst
    cut_src, cut_dst = cut_src[keep], cut_dst[keep]
    if cut_src.size == 0:
        return np.empty(0, dtype=np.int64)

    cover_count = np.bincount(
        np.concatenate([cut_src, cut_dst]), minlength=graph.num_vertices
    )
    alive = np.ones(cut_src.shape[0], dtype=bool)
    separator: list[int] = []
    while np.any(alive):
        v = int(np.argmax(cover_count))
        if cover_count[v] == 0:
            break
        separator.append(v)
        covered = alive & ((cut_src == v) | (cut_dst == v))
        for u in np.concatenate([cut_src[covered], cut_dst[covered]]):
            cover_count[u] -= 1
        alive &= ~covered
    return np.asarray(sorted(separator), dtype=np.int64)


def nested_dissection(
    graph: CSRGraph,
    leaf_size: int = 32,
    opts: SerialOptions | None = None,
    rng: np.random.Generator | None = None,
) -> NestedDissectionResult:
    """Compute a nested-dissection ordering of ``graph``.

    Subgraphs at or below ``leaf_size`` vertices are ordered as-is (a
    real solver would use minimum-degree there).
    """
    if leaf_size < 2:
        raise InvalidParameterError("leaf_size must be >= 2")
    opts = opts or SerialOptions(ubfactor=1.2)
    rng = rng or np.random.default_rng(opts.seed)
    n = graph.num_vertices
    separator_sizes: list[int] = []

    def recurse(g: CSRGraph, vmap: np.ndarray) -> np.ndarray:
        if g.num_vertices <= leaf_size or g.num_edges == 0:
            return vmap
        labels = bisect_once(g, 0.5, opts, rng)
        sep = vertex_separator_from_bisection(g, labels)
        in_sep = np.zeros(g.num_vertices, dtype=bool)
        in_sep[sep] = True
        side0 = np.where((labels == 0) & ~in_sep)[0]
        side1 = np.where((labels == 1) & ~in_sep)[0]
        if side0.size == 0 or side1.size == 0:
            return vmap  # separator swallowed a side: stop dissecting
        separator_sizes.append(int(sep.shape[0]))
        sub0, _ = g.subgraph(side0)
        sub1, _ = g.subgraph(side1)
        left = recurse(sub0, vmap[side0])
        right = recurse(sub1, vmap[side1])
        return np.concatenate([left, right, vmap[sep]])

    perm = recurse(graph, np.arange(n, dtype=np.int64))
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n, dtype=np.int64)
    return NestedDissectionResult(perm=perm, iperm=iperm, separator_sizes=separator_sizes)


def symbolic_fill(graph: CSRGraph, iperm: np.ndarray) -> int:
    """Exact fill-in count of Cholesky under the given ordering.

    Runs symbolic elimination: vertices are eliminated in ``iperm`` order;
    eliminating v joins its not-yet-eliminated neighbors into a clique,
    and every edge those joins create is a fill-in.  O(sum of elimination
    clique sizes squared) — fine for test-sized graphs; lower is better.
    """
    n = graph.num_vertices
    iperm = np.asarray(iperm, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    order[iperm] = np.arange(n, dtype=np.int64)  # order[i] = i-th eliminated
    adj: list[set[int]] = [set(map(int, graph.neighbors(v))) for v in range(n)]
    eliminated = np.zeros(n, dtype=bool)
    fill = 0
    for v in order:
        v = int(v)
        nbrs = [u for u in adj[v] if not eliminated[u]]
        for i in range(len(nbrs)):
            a = nbrs[i]
            for b in nbrs[i + 1 :]:
                if b not in adj[a]:
                    adj[a].add(b)
                    adj[b].add(a)
                    fill += 1
        eliminated[v] = True
        adj[v].clear()
    return fill


#: Backwards-compatible alias (earlier releases shipped a weaker proxy).
fill_in_upper_bound = symbolic_fill

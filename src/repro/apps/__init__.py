"""Downstream applications of the partitioner (the paper's Sec. I uses)."""

from .nested_dissection import (
    NestedDissectionResult,
    fill_in_upper_bound,
    nested_dissection,
    symbolic_fill,
    vertex_separator_from_bisection,
)
from .repartition import RepartitionResult, migration_volume, repartition
from .scheduling import Schedule, random_task_graph, schedule_tasks

__all__ = [
    "nested_dissection",
    "NestedDissectionResult",
    "vertex_separator_from_bisection",
    "symbolic_fill",
    "fill_in_upper_bound",
    "repartition",
    "RepartitionResult",
    "migration_volume",
    "schedule_tasks",
    "Schedule",
    "random_task_graph",
]

"""Gmetis: Metis as Galois set iterators (paper Sec. II.C).

Coarsening and refinement run as speculative ``for_each`` loops over
vertices: the matching iteration locks a vertex and its neighborhood and
then behaves exactly like sequential HEM (no two-round conflict scheme —
speculation *prevents* conflicts instead of repairing them), so quality
tracks serial Metis.  The price is the speculation tax on irregular
neighborhoods, which is why the paper reports Gmetis "not as efficient
as ParMetis in terms of performance".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..faults import attach_injector
from ..graphs.csr import CSRGraph
from ..graphs.metrics import edge_cut, imbalance
from ..obs.hooks import finish_run, profile_run
from ..obs.spans import clock_span
from ..result import PartitionResult
from ..runtime.clock import SimClock
from ..runtime.machine import PAPER_MACHINE, MachineSpec
from ..runtime.trace import LevelRecord, RefinementRecord, Trace
from ..serial.bisection import recursive_bisection
from ..serial.coarsen import CoarseningLevel
from ..serial.contraction import contract
from ..serial.kway import kway_refine, rebalance_pass
from ..serial.options import SerialOptions
from ..serial.project import project_partition
from .speculative import SpeculativeExecutor

__all__ = ["Gmetis", "GmetisOptions"]


@dataclass(frozen=True)
class GmetisOptions:
    """Knobs of the Gmetis reproduction."""

    num_threads: int = 8
    ubfactor: float = 1.03
    matching: str = "hem"
    coarsen_to_factor: int = 20
    coarsen_min: int = 64
    min_shrink: float = 0.05
    refine_passes: int = 4
    seed: int = 1
    #: Optional fault plan (see :mod:`repro.faults`): a FaultPlan, a plan
    #: dict, or a path to a plan JSON file.  ``None`` disables injection.
    fault_plan: object = None
    #: Respond to injected faults with retry/degradation (True) or let
    #: them crash the run (False — the faults self-check's mutation).
    fault_recovery: bool = True

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise InvalidParameterError("num_threads must be >= 1")
        if self.ubfactor < 1.0:
            raise InvalidParameterError("ubfactor must be >= 1.0")
        if self.refine_passes < 1:
            raise InvalidParameterError("refine_passes must be >= 1")

    def coarsen_target(self, k: int) -> int:
        return max(self.coarsen_min, self.coarsen_to_factor * k)

    def serial_options(self) -> SerialOptions:
        return SerialOptions(
            ubfactor=self.ubfactor,
            matching=self.matching,
            coarsen_to_factor=self.coarsen_to_factor,
            coarsen_min=self.coarsen_min,
            min_shrink=self.min_shrink,
            seed=self.seed,
        )


class Gmetis:
    """Multicore Metis on the optimistic (Galois) execution model."""

    name = "gmetis"

    def __init__(
        self,
        options: GmetisOptions | None = None,
        machine: MachineSpec | None = None,
    ) -> None:
        self.options = options or GmetisOptions()
        self.machine = machine or PAPER_MACHINE

    # ------------------------------------------------------------------
    def _speculative_match(
        self, graph: CSRGraph, executor: SpeculativeExecutor,
        rng: np.random.Generator, detail: str,
    ):
        """HEM as a Galois iterator: lock v + neighbors, match greedily."""
        n = graph.num_vertices
        match = np.full(n, -1, dtype=np.int64)
        adjp, adjncy, adjwgt = graph.adjp, graph.adjncy, graph.adjwgt
        scheme = self.options.matching

        def neighborhood(v: int) -> np.ndarray:
            return adjncy[adjp[v]: adjp[v + 1]]

        def body(v: int) -> None:
            if match[v] >= 0:
                return
            s, e = adjp[v], adjp[v + 1]
            nbrs = adjncy[s:e]
            free = match[nbrs] < 0
            if not np.any(free):
                match[v] = v
                return
            if scheme == "hem":
                j = int(np.argmax(np.where(free, adjwgt[s:e], -1)))
            else:
                idx = np.where(free)[0]
                j = int(idx[rng.integers(0, idx.shape[0])])
            u = int(nbrs[j])
            match[v] = u
            match[u] = v

        items = rng.permutation(n)
        stats = executor.for_each(items, neighborhood, body, detail=detail)
        left = match < 0
        match[left] = np.where(left)[0]
        return match, stats

    # ------------------------------------------------------------------
    def partition(self, graph: CSRGraph, k: int) -> PartitionResult:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        opts = self.options
        clock = SimClock()
        injector = attach_injector(
            clock, opts.fault_plan, recover=opts.fault_recovery
        )
        trace = Trace()
        profiler = profile_run(
            clock, engine=self.name, graph=graph, k=k, options=self.options
        )
        executor = SpeculativeExecutor(opts.num_threads, self.machine.cpu, clock)
        rng = np.random.default_rng(opts.seed)
        t0 = time.perf_counter()

        clock.set_phase("coarsening")
        levels: list[CoarseningLevel] = []
        current = graph
        target = opts.coarsen_target(k)
        level_idx = 0
        total_aborts = 0
        while current.num_vertices > target:
            with clock_span(
                clock, f"level {level_idx}", category="level",
                engine="galois", num_vertices=current.num_vertices,
            ):
                match, sstats = self._speculative_match(
                    current, executor, rng, detail=f"match L{level_idx}"
                )
                total_aborts += sstats.aborted
                coarse, cmap = contract(current, match)
                # Contraction as another speculative loop over coarse vertices.
                clock.charge(
                    "compute",
                    self.machine.cpu.edge_seconds(
                        current.num_directed_edges,
                        avg_degree=2 * current.num_edges / max(1, current.num_vertices),
                    ) / max(1, min(opts.num_threads, self.machine.cpu.num_cores)),
                    count=float(current.num_directed_edges),
                    detail=f"contract L{level_idx}",
                )
            ids = np.arange(current.num_vertices)
            trace.levels.append(
                LevelRecord(
                    level=level_idx,
                    num_vertices=current.num_vertices,
                    num_edges=current.num_edges,
                    matched_pairs=int((match != ids).sum()) // 2,
                    conflicts=sstats.aborted,  # aborts play the conflict role
                    self_matches=int((match == ids).sum()),
                    engine="galois",
                )
            )
            shrink = 1.0 - coarse.num_vertices / current.num_vertices
            levels.append(CoarseningLevel(graph=current, cmap=cmap))
            current = coarse
            level_idx += 1
            if shrink < opts.min_shrink:
                break

        clock.set_phase("initpart")
        part = recursive_bisection(current, k, opts.serial_options(), rng=rng)
        sweeps = 8 * max(1, int(np.ceil(np.log2(max(k, 2)))))
        clock.charge(
            "compute",
            self.machine.cpu.edge_seconds(sweeps * current.num_directed_edges),
            count=float(sweeps * current.num_directed_edges),
            detail="recursive bisection",
        )

        clock.set_phase("uncoarsening")
        for li in range(len(levels) - 1, -1, -1):
            level = levels[li]
            with clock_span(
                clock, f"level {li}", category="level",
                engine="galois", num_vertices=level.graph.num_vertices,
            ):
                part = project_partition(part, level.cmap)
                cut_before = edge_cut(level.graph, part)
                part, passes = kway_refine(
                    level.graph, part, k, ubfactor=opts.ubfactor,
                    max_passes=opts.refine_passes, rng=rng,
                )
                # Refinement as speculative loops: boundary iterations lock
                # their neighborhoods; the abort tax scales with the boundary
                # connectivity (model it at the measured matching abort rate).
                for pres in passes:
                    clock.charge(
                        "compute",
                        self.machine.cpu.edge_seconds(
                            pres.edge_scans,
                            avg_degree=2 * level.graph.num_edges
                            / max(1, level.graph.num_vertices),
                        ) / max(1, min(opts.num_threads, self.machine.cpu.num_cores))
                        * (1.0 + 2.0 * (total_aborts / max(1, graph.num_vertices))),
                        count=float(pres.edge_scans),
                        detail=f"speculative refine L{li}",
                    )
                    clock.charge(
                        "sync",
                        pres.edge_scans * executor.lock_op_seconds,
                        count=float(pres.edge_scans),
                        detail=f"refine lock traffic L{li}",
                    )
                trace.refinements.append(
                    RefinementRecord(
                        level=li, pass_index=0,
                        moves_proposed=sum(p.moves_proposed for p in passes),
                        moves_committed=sum(p.moves_committed for p in passes),
                        cut_before=cut_before, cut_after=edge_cut(level.graph, part),
                        engine="galois",
                    )
                )

        if k > 1 and imbalance(graph, part, k) > opts.ubfactor:
            pweights = np.bincount(
                part, weights=graph.vwgt.astype(np.float64), minlength=k
            )
            ideal = graph.total_vertex_weight / k
            rebalance_pass(graph, part, pweights, k, opts.ubfactor * ideal)

        finish_run(
            profiler,
            trace=trace,
            injector=injector,
            machine=self.machine,
            cut=edge_cut(graph, part),
            imbalance=imbalance(graph, part, k),
            aborts=total_aborts,
        )
        extras = {"num_threads": opts.num_threads, "aborts": total_aborts}
        if injector is not None:
            extras["degraded"] = injector.degraded
            extras["fault_events"] = list(injector.events)
        return PartitionResult(
            method=self.name,
            graph_name=graph.name,
            k=k,
            part=part,
            clock=clock,
            trace=trace,
            wall_seconds=time.perf_counter() - t0,
            extras=extras,
        )

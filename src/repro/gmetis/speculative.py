"""Galois-style optimistic parallel executor (paper Sec. II.C, [21]).

Galois runs ordinary sequential loops speculatively in parallel: each
iteration acquires abstract locks on the graph elements it touches
(its *neighborhood*); when two concurrent iterations' neighborhoods
overlap, one aborts and retries.  The paper's Gmetis is Metis expressed
as Galois set iterators — and "this approach is found to be not as
efficient as ParMetis in terms of performance", largely because
irregular graphs make neighborhoods collide and the speculation tax
(lock bookkeeping + aborted work) is paid on every element.

:class:`SpeculativeExecutor` reproduces those semantics deterministically:
items are scheduled in rounds of ``num_threads``; within a round, items
whose neighborhoods intersect an earlier item's abort and requeue.  The
cost model charges committed work, aborted work, and per-element lock
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..runtime.clock import SimClock
from ..runtime.machine import CpuSpec

__all__ = ["SpeculativeStats", "SpeculativeExecutor"]


@dataclass
class SpeculativeStats:
    """Outcome counters of one speculative loop."""

    committed: int = 0
    aborted: int = 0
    rounds: int = 0
    locks_acquired: int = 0

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0


@dataclass
class SpeculativeExecutor:
    """Deterministic model of a Galois ``for_each`` over graph elements."""

    num_threads: int
    cpu: CpuSpec
    clock: SimClock
    #: Per-lock acquire/release cost (the Galois conflict-detection tax).
    lock_op_seconds: float = 1.2e-8

    def for_each(
        self,
        items: np.ndarray,
        neighborhood: Callable[[int], np.ndarray],
        body: Callable[[int], None],
        detail: str = "",
        max_retries: int = 10,
    ) -> SpeculativeStats:
        """Run ``body(item)`` for every item with optimistic parallelism.

        ``neighborhood(item)`` lists the element ids the iteration locks;
        the executor detects intra-round overlaps, aborts the later
        iteration, and requeues it.  ``body`` is invoked exactly once per
        item, in a serializable order (only after its round slot wins its
        locks) — results equal a sequential loop over a permutation of
        ``items``.
        """
        injector = getattr(self.clock, "injector", None)
        if injector is not None:
            # The speculative loop's round structure is a barrier surface:
            # a stalled worker delays every round it participates in.
            for spec in injector.fire("thread.stall", detail or "for_each"):
                if spec.kind == "stall":
                    self.clock.charge(
                        "barrier", spec.seconds, count=1.0,
                        detail="injected straggler stall",
                    )
                elif injector.recover:
                    self.clock.charge(
                        "barrier", spec.seconds, count=1.0,
                        detail="deadlock watchdog",
                    )
                    injector.record_recovery(
                        "thread.stall", "work-steal",
                        "stalled iteration's neighborhood re-executed",
                    )
                else:
                    injector.raise_for(spec, detail)
        stats = SpeculativeStats()
        queue = list(np.asarray(items, dtype=np.int64))
        retries: dict[int, int] = {}
        committed_work = 0.0
        aborted_work = 0.0
        while queue:
            stats.rounds += 1
            round_items = queue[: self.num_threads]
            queue = queue[self.num_threads :]
            owned: dict[int, int] = {}
            for item in round_items:
                nbh = neighborhood(int(item))
                stats.locks_acquired += len(nbh) + 1
                conflict = any(int(x) in owned for x in nbh) or int(item) in owned
                if conflict:
                    stats.aborted += 1
                    aborted_work += len(nbh) + 1
                    r = retries.get(int(item), 0) + 1
                    retries[int(item)] = r
                    if r <= max_retries:
                        queue.append(item)
                    else:  # pathological contention: serialise it now
                        body(int(item))
                        stats.committed += 1
                        committed_work += len(nbh) + 1
                    continue
                for x in nbh:
                    owned[int(x)] = int(item)
                owned[int(item)] = int(item)
                body(int(item))
                stats.committed += 1
                committed_work += len(nbh) + 1

        # Wall time: committed work spreads over the threads; aborted work
        # and lock traffic are pure overhead on the critical path's round
        # structure.
        self.clock.charge(
            "compute",
            self.cpu.edge_seconds(committed_work) / max(1, min(self.num_threads, self.cpu.num_cores))
            + self.cpu.edge_seconds(aborted_work),
            count=committed_work + aborted_work,
            detail=detail or "speculative for_each",
        )
        self.clock.charge(
            "sync",
            stats.locks_acquired * self.lock_op_seconds,
            count=float(stats.locks_acquired),
            detail=f"{detail}: lock traffic",
        )
        return stats

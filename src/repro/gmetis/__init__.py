"""Gmetis reproduction: Metis on the Galois optimistic-parallelism model."""

from .partitioner import Gmetis, GmetisOptions
from .speculative import SpeculativeExecutor, SpeculativeStats

__all__ = ["Gmetis", "GmetisOptions", "SpeculativeExecutor", "SpeculativeStats"]

"""The concurrent partition service (see docs/SERVICE.md).

:class:`PartitionRequest` is the canonical input of the whole partition
API; :class:`PartitionService` serves queued requests over a simulated
worker pool with a fingerprint-keyed result cache, identical-graph
batching, priority-lane admission control and fault-plan-aware retries.
"""

from .cache import CacheEntry, ResultCache
from .loadgen import WorkloadSpec, build_workload, run_load
from .request import PartitionRequest
from .scheduler import PartitionService, ServiceConfig, Ticket
from .stats import ServiceStats
from .workers import GPU_ENGINES, Assignment, Worker, WorkerPool

__all__ = [
    "PartitionRequest",
    "PartitionService",
    "ServiceConfig",
    "Ticket",
    "ResultCache",
    "CacheEntry",
    "ServiceStats",
    "WorkerPool",
    "Worker",
    "Assignment",
    "GPU_ENGINES",
    "WorkloadSpec",
    "build_workload",
    "run_load",
]

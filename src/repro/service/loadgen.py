"""Load driver: deterministic mixed workloads against the service.

``python -m repro bench --service`` and ``python -m repro serve`` both
drive a :class:`~repro.service.PartitionService` with the workload built
here: a round-robin mix of engines, k values and seeds over a couple of
small graphs, with deliberate repeats so the fingerprint cache sees
hits.  The driver handles backpressure (an overloaded lane triggers a
drain, then the submission is replayed — nothing is dropped below the
admission limit) and can differentially verify every unique
configuration against a direct :func:`repro.partition` call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ServiceOverloadedError
from ..graphs import generators
from .request import PartitionRequest
from .scheduler import PartitionService

__all__ = ["WorkloadSpec", "build_workload", "run_load"]

#: Engine mix of the standard service workload: the paper's serial and
#: shared-memory/hybrid engines plus cheap baselines, so the GPU lease,
#: the CPU workers and the cache all see traffic.
DEFAULT_ENGINES = ("gp-metis", "mt-metis", "metis", "spectral", "random", "block")


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a generated workload (all fields deterministic)."""

    requests: int = 100
    graph_n: int = 600
    seed: int = 7
    engines: tuple[str, ...] = DEFAULT_ENGINES
    ks: tuple[int, ...] = (4, 8)
    seeds: tuple[int, ...] = (1, 2)


def build_workload(spec: WorkloadSpec | None = None) -> list[PartitionRequest]:
    """The standard mixed workload: ``spec.requests`` requests cycling a
    fixed template list (engine x k x seed x graph), so any workload
    longer than the template count repeats configurations and exercises
    the cache.  Priorities cycle the lanes 0..2."""
    spec = spec or WorkloadSpec()
    side = max(4, int(round(np.sqrt(spec.graph_n / 2))))
    graphs = [
        generators.grid2d(side, side),
        generators.delaunay(spec.graph_n, seed=spec.seed),
    ]
    templates = [
        (engine, k, seed, graph)
        for graph in graphs
        for engine in spec.engines
        for k in spec.ks
        for seed in spec.seeds
    ]
    requests = []
    for i in range(spec.requests):
        engine, k, seed, graph = templates[i % len(templates)]
        # Lower the hybrid's GPU threshold so the workload's small graphs
        # actually exercise the GPU lease and the CSR-transfer batching.
        options = {"gpu_threshold_min": 256} if engine == "gp-metis" else {}
        requests.append(
            PartitionRequest(
                graph=graph,
                k=k,
                method=engine,
                options=options,
                seed=seed,
                priority=i % 3,
                tags=("loadgen", f"req{i}"),
            )
        )
    return requests


def run_load(
    service: PartitionService,
    requests: list[PartitionRequest],
    *,
    verify: bool = False,
) -> dict:
    """Drive ``requests`` through ``service`` and report.

    Submissions rejected by admission control trigger a drain (serving
    the backlog) and are replayed, so every request is eventually served
    — ``resubmissions`` counts how often backpressure fired.  With
    ``verify=True``, each unique configuration's partition vector is
    compared against a direct synchronous run.
    """
    tickets = []
    resubmissions = 0
    for request in requests:
        try:
            tickets.append(service.submit(request))
        except ServiceOverloadedError:
            service.drain()
            resubmissions += 1
            tickets.append(service.submit(request))
    service.drain()

    failed = [t for t in tickets if t.status == "failed"]
    verification = None
    if verify:
        verification = _verify_against_direct(tickets)
    tracing = _verify_tracing(service, tickets)
    report = {
        "requests": len(requests),
        "completed": sum(1 for t in tickets if t.status in ("served", "failed")),
        "served": sum(1 for t in tickets if t.ok),
        "failed": len(failed),
        "dropped": len(requests) - len(tickets),
        "resubmissions": resubmissions,
        "cache_hits": sum(1 for t in tickets if t.cache == "hit"),
        "cache_misses": sum(1 for t in tickets if t.cache == "miss"),
        "batched_followers": sum(
            1 for t in tickets if t.batch_id is not None and not t.batch_leader
        ),
        "service": service.snapshot(),
        "tracing": tracing,
    }
    if verification is not None:
        report["verification"] = verification
    return report


def _verify_tracing(service, tickets) -> dict:
    """Check the request-tracing invariants over the served tickets.

    Every ticket carries a unique deterministic trace id; every span of
    the last drain's request subtrees shares its request's trace id; and
    each request's attribution buckets sum to its latency (to 1e-6).
    """
    from ..obs.critical import request_entry

    trace_ids = [t.trace_id for t in tickets]
    spans_share_trace = bool(tickets)
    profiler = service.last_profiler
    if profiler is not None:
        walk = [profiler.root]
        request_spans = []
        while walk:
            node = walk.pop()
            if node.category == "request":
                request_spans.append(node)
            else:
                walk.extend(node.children)
        for span in request_spans:
            tid = span.trace_id
            stack = [span]
            while stack:
                node = stack.pop()
                if node.trace_id != tid:
                    spans_share_trace = False
                stack.extend(node.children)
    attribution_ok = True
    max_residual = 0.0
    for ticket in tickets:
        entry = request_entry(
            ticket, dispatch_seconds=service.config.dispatch_seconds,
            batch_wait=ticket.batch_wait, links=ticket.links,
        )
        residual = abs(sum(entry["attribution"].values()) - entry["latency"])
        max_residual = max(max_residual, residual)
        if residual > 1e-6:
            attribution_ok = False
    return {
        "trace_ids_present": all(trace_ids),
        "trace_ids_unique": len(set(trace_ids)) == len(trace_ids),
        "spans_share_trace": spans_share_trace,
        "attribution_sums_to_latency": attribution_ok,
        "max_attribution_residual": max_residual,
        "ok": all(trace_ids)
        and len(set(trace_ids)) == len(trace_ids)
        and spans_share_trace
        and attribution_ok,
    }


def _verify_against_direct(tickets) -> dict:
    """Differential check: one direct run per unique fingerprint must
    produce the vector the service returned (hit or miss)."""
    checked: dict[str, np.ndarray] = {}
    mismatches = []
    for ticket in tickets:
        if ticket.result is None:
            continue
        direct = checked.get(ticket.fingerprint)
        if direct is None:
            direct = ticket.request.run().part
            checked[ticket.fingerprint] = direct
        if not np.array_equal(ticket.result.part, direct):
            mismatches.append(ticket.fingerprint)
    return {
        "unique_configs": len(checked),
        "mismatches": sorted(set(mismatches)),
        "ok": not mismatches,
    }

"""The simulated worker pool: CPU workers plus a shared GPU lease.

The service models a small cluster in *simulated* time: each worker is a
machine that can run one partition job at a time, and the pool holds a
fixed number of GPU slots that jobs on GPU-backed engines (gp-metis)
must lease for their whole duration — submitting eight gp-metis jobs to
eight workers with one GPU serializes on the lease instead of pretending
eight Titans exist.

Assignment is a deterministic list-scheduler: the worker (and GPU slot)
that frees earliest wins, ties broken by lowest index.  Execution order
never depends on the pool shape — only start/finish times do — which is
what makes service results worker-count-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError

__all__ = ["Worker", "Assignment", "WorkerPool", "GPU_ENGINES"]

#: Engines whose jobs must hold a GPU slot while running.
GPU_ENGINES = frozenset({"gp-metis"})


@dataclass
class Worker:
    """One simulated machine of the pool."""

    index: int
    free_at: float = 0.0
    jobs: int = 0
    busy_seconds: float = 0.0


@dataclass
class Assignment:
    """Where and when a job will run."""

    worker: int
    start: float
    gpu_slot: int | None = None


@dataclass
class WorkerPool:
    """Fixed set of workers plus a bounded GPU lease."""

    num_workers: int = 4
    gpu_slots: int = 1
    workers: list[Worker] = field(init=False)
    _gpu_free_at: list[float] = field(init=False)
    gpu_busy_seconds: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise InvalidParameterError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.gpu_slots < 0:
            raise InvalidParameterError(
                f"gpu_slots must be >= 0, got {self.gpu_slots}"
            )
        self.workers = [Worker(i) for i in range(self.num_workers)]
        self._gpu_free_at = [0.0] * self.gpu_slots

    # ------------------------------------------------------------------
    def assign(self, ready_at: float, seconds: float, *, needs_gpu: bool) -> Assignment:
        """Place one job and advance the chosen worker's (and GPU slot's)
        free time.  ``ready_at`` is when the job became runnable; the job
        starts when the worker — and, for GPU engines, a GPU slot — is
        free."""
        if needs_gpu and not self._gpu_free_at:
            raise InvalidParameterError(
                "job needs a GPU but the pool was built with gpu_slots=0"
            )
        worker = min(self.workers, key=lambda w: (w.free_at, w.index))
        start = max(ready_at, worker.free_at)
        gpu_slot: int | None = None
        if needs_gpu:
            gpu_slot = min(
                range(len(self._gpu_free_at)), key=lambda i: (self._gpu_free_at[i], i)
            )
            start = max(start, self._gpu_free_at[gpu_slot])
            self._gpu_free_at[gpu_slot] = start + seconds
            self.gpu_busy_seconds += seconds
        worker.free_at = start + seconds
        worker.jobs += 1
        worker.busy_seconds += seconds
        return Assignment(worker=worker.index, start=start, gpu_slot=gpu_slot)

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """When the last worker frees (0 when nothing ran)."""
        return max((w.free_at for w in self.workers), default=0.0)

    def utilization(self, since: float = 0.0) -> float:
        """Busy share of worker-time between ``since`` and the makespan."""
        horizon = self.makespan - since
        if horizon <= 0:
            return 0.0
        return min(
            1.0,
            sum(w.busy_seconds for w in self.workers)
            / (self.num_workers * horizon),
        )

    def reset_accounting(self) -> None:
        """Zero the per-drain busy counters (free times stay)."""
        for w in self.workers:
            w.busy_seconds = 0.0

    def stats(self) -> dict:
        return {
            "num_workers": self.num_workers,
            "gpu_slots": self.gpu_slots,
            "makespan": self.makespan,
            "jobs": [w.jobs for w in self.workers],
            "busy_seconds": [w.busy_seconds for w in self.workers],
            "gpu_busy_seconds": self.gpu_busy_seconds,
        }

"""Service-side observability: the ``service.*`` metric family.

One :class:`ServiceStats` per :class:`~repro.service.PartitionService`
accumulates counters (requests, hits, rejections, retries), latency
histograms (queue wait, end-to-end latency, on-worker seconds) and
derived gauges (throughput, utilization) in a standard
:class:`repro.obs.MetricsRegistry`, so the exporters, the ledger and the
regression gate consume service behaviour through exactly the machinery
PR 2-3 built for engine runs.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry

__all__ = ["ServiceStats"]


class ServiceStats:
    """Accumulates ``service.*`` metrics across a service's lifetime."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        # Materialize the headline counters at zero so snapshots, ledger
        # records and gate rules see them even when nothing happened
        # (an absent "service.failed" would be skipped, not gated).
        for name in (
            "service.requests",
            "service.served",
            "service.failed",
            "service.rejected",
            "service.retries",
            "service.cache_hits",
            "service.cache_misses",
            "service.hw.pcie_bytes",
            "service.hw.gpu_bytes",
        ):
            self.metrics.counter(name)

    # -- per-event recorders -------------------------------------------
    def record_submit(self, lane: int) -> None:
        self.metrics.counter("service.requests").inc()
        self.metrics.counter("service.queued", lane=str(lane)).inc()

    def record_rejection(self, lane: int) -> None:
        self.metrics.counter("service.rejected").inc()
        self.metrics.counter("service.rejected.lane", lane=str(lane)).inc()

    def record_retry(self, count: int = 1) -> None:
        self.metrics.counter("service.retries").inc(count)

    def record_invalidation(self, count: int) -> None:
        self.metrics.counter("service.cache_invalidated").inc(count)

    def record_ticket(self, ticket) -> None:
        """Fold one finished ticket into the registry."""
        m = self.metrics
        if ticket.status == "failed":
            m.counter("service.failed").inc()
        else:
            m.counter("service.served").inc()
        if ticket.cache == "hit":
            m.counter("service.cache_hits").inc()
        elif ticket.cache == "miss":
            m.counter("service.cache_misses").inc()
        if ticket.batch_id is not None and not ticket.batch_leader:
            m.counter("service.batched_followers").inc()
            m.counter("service.amortized_seconds").inc(ticket.amortized_seconds)
        m.histogram("service.queue_wait").observe(ticket.queue_wait)
        m.histogram("service.latency").observe(ticket.latency)
        m.histogram("service.service_seconds").observe(ticket.service_seconds)
        m.histogram("service.latency.engine", engine=ticket.engine).observe(
            ticket.latency
        )
        # Per-lane splits so the SLO monitor can target a single lane;
        # the un-labelled histograms above stay for gate-policy compat.
        lane = str(ticket.lane)
        m.histogram("service.latency", lane=lane).observe(ticket.latency)
        m.histogram("service.queue_wait", lane=lane).observe(ticket.queue_wait)

    def record_drain(self, *, makespan: float, served: int, utilization: float,
                     batches: int) -> None:
        m = self.metrics
        m.counter("service.drains").inc()
        m.counter("service.batches").inc(batches)
        m.gauge("service.makespan_seconds").set(makespan)
        m.gauge("service.utilization").set(utilization)
        if makespan > 0:
            m.gauge("service.throughput_rps").set(served / makespan)
        # Percentiles as gauges so the regression gate (which reads
        # counters/gauges) can police latency directly.
        latency = m.histogram("service.latency")
        queue_wait = m.histogram("service.queue_wait")
        m.gauge("service.latency_p50").set(latency.percentile(50.0) or 0.0)
        m.gauge("service.latency_p95").set(latency.percentile(95.0) or 0.0)
        m.gauge("service.latency_p99").set(latency.percentile(99.0) or 0.0)
        m.gauge("service.queue_wait_p95").set(queue_wait.percentile(95.0) or 0.0)

    def record_hw(self, agg: dict) -> None:
        """Fold one drain's hardware-traffic aggregate (built by the
        scheduler from each executed ticket's ``hw`` block) into the
        lifetime ``service.hw.*`` family."""
        m = self.metrics
        m.counter("service.hw.pcie_bytes").inc(agg["pcie"]["bytes"])
        gpu = agg.get("gpu")
        if gpu is not None:
            m.counter("service.hw.gpu_bytes").inc(gpu["bytes_moved"])
        m.gauge("service.hw.bytes_per_request").set(agg["bytes_per_request"])
        avoid = agg.get("transfer_avoidance")
        if avoid is not None:
            m.gauge("service.hw.transfer_avoidance").set(avoid)

    def record_cache(self, cache_stats: dict) -> None:
        m = self.metrics
        m.gauge("service.cache_entries").set(cache_stats["entries"])
        m.gauge("service.cache_hit_rate").set(cache_stats["hit_rate"])
        m.gauge("service.saved_seconds").set(cache_stats["saved_seconds"])

    # -- reads ---------------------------------------------------------
    def value(self, name: str, **labels) -> float:
        out = self.metrics.value(name, **labels)
        return 0.0 if out is None else out

    def snapshot(self) -> dict:
        """JSON-ready summary: the headline numbers plus full registry."""
        m = self.metrics
        latency = m.histogram("service.latency").summary()
        queue_wait = m.histogram("service.queue_wait").summary()
        return {
            "requests": self.value("service.requests"),
            "served": self.value("service.served"),
            "failed": self.value("service.failed"),
            "rejected": self.value("service.rejected"),
            "retries": self.value("service.retries"),
            "cache_hits": self.value("service.cache_hits"),
            "cache_misses": self.value("service.cache_misses"),
            "throughput_rps": self.value("service.throughput_rps"),
            "makespan_seconds": self.value("service.makespan_seconds"),
            "utilization": self.value("service.utilization"),
            "latency_p50": latency["p50"],
            "latency_p95": latency["p95"],
            "latency_p99": latency["p99"],
            "queue_wait_p50": queue_wait["p50"],
            "queue_wait_p95": queue_wait["p95"],
            "hw_pcie_bytes": self.value("service.hw.pcie_bytes"),
            "hw_gpu_bytes": self.value("service.hw.gpu_bytes"),
            "hw_bytes_per_request": self.value("service.hw.bytes_per_request"),
            "hw_transfer_avoidance": self.value("service.hw.transfer_avoidance"),
            "metrics": m.as_dict(),
        }

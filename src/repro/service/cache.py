"""Fingerprint-keyed result cache with LRU eviction.

The cache key is the request's config fingerprint
(:func:`repro.obs.ledger.config_fingerprint` over
``{engine, graph, graph_digest, k, seed, options_hash}``) — the ledger's
"same configuration" plus a content digest of the graph's CSR arrays, so
two distinct graphs sharing a display name can never serve each other's
partition vectors.  Because every simulated run is deterministic, a hit
returns a result bit-identical to re-running the engine — minus the
modeled compute time, which is the point of the service.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError
from ..result import PartitionResult

__all__ = ["CacheEntry", "ResultCache"]


@dataclass
class CacheEntry:
    """One cached partition result plus the config block it answers for."""

    fingerprint: str
    config: dict
    result: PartitionResult
    hits: int = 0
    #: Modeled seconds the engine charged to produce this result — what a
    #: cache hit saves the requester (reported as ``service.saved_seconds``).
    modeled_seconds: float = field(default=0.0)


class ResultCache:
    """Bounded LRU mapping config fingerprints to partition results.

    ``get`` refreshes recency; ``put`` evicts the least-recently-used
    entry past ``max_entries``.  ``invalidate`` removes entries
    explicitly — everything, one fingerprint, or every entry matching a
    config selector (``graph=``/``engine=``) — for when the caller knows
    the world changed (new code, new graph generator) even though the
    fingerprint did not.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise InvalidParameterError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.saved_seconds = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> CacheEntry | None:
        """The entry under ``fingerprint`` (refreshing recency), or None."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        entry.hits += 1
        self.hits += 1
        self.saved_seconds += entry.modeled_seconds
        return entry

    def peek(self, fingerprint: str) -> CacheEntry | None:
        """The entry without touching recency or hit/miss counters."""
        return self._entries.get(fingerprint)

    def put(self, fingerprint: str, config: dict, result: PartitionResult) -> CacheEntry:
        """Store a result, evicting the LRU entry when over capacity."""
        entry = CacheEntry(
            fingerprint=fingerprint,
            config=dict(config),
            result=result,
            modeled_seconds=result.modeled_seconds,
        )
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
        self._entries[fingerprint] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    # ------------------------------------------------------------------
    def invalidate(
        self,
        fingerprint: str | None = None,
        *,
        graph: str | None = None,
        engine: str | None = None,
    ) -> int:
        """Drop entries; returns how many were removed.

        With no arguments, clears the cache.  ``fingerprint`` drops one
        entry; ``graph``/``engine`` drop every entry whose config block
        matches (both given = AND).
        """
        if fingerprint is not None:
            removed = 1 if self._entries.pop(fingerprint, None) is not None else 0
        elif graph is None and engine is None:
            removed = len(self._entries)
            self._entries.clear()
        else:
            doomed = [
                fp
                for fp, entry in self._entries.items()
                if (graph is None or entry.config.get("graph") == graph)
                and (engine is None or entry.config.get("engine") == engine)
            ]
            for fp in doomed:
                del self._entries[fp]
            removed = len(doomed)
        self.invalidations += removed
        return removed

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "saved_seconds": self.saved_seconds,
        }

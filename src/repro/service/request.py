"""The canonical input type of the partition API: one request record.

Every way of running a partitioner — the synchronous
:func:`repro.partition` facade, the CLI, the benchmark drivers, and the
concurrent :class:`~repro.service.PartitionService` — builds a
:class:`PartitionRequest` and executes it.  The request owns the mapping
to the engine registry (:data:`repro.api.PARTITIONERS`), the effective
seed, and the *config fingerprint* — the run ledger's
``{engine, graph, k, seed, options_hash}`` digest plus a content digest
of the graph's CSR arrays.  The extra component matters to the service
result cache: two distinct graphs can share a display name (two
``delaunay(300)`` draws with different seeds), and a cache keyed on the
name alone would serve one graph's partition vector for the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from ..exceptions import InvalidParameterError
from ..graphs.csr import CSRGraph
from ..result import PartitionResult
from ..runtime.machine import MachineSpec

__all__ = ["PartitionRequest"]


@dataclass(frozen=True)
class PartitionRequest:
    """One partition job: what to run, on what, and how urgently.

    ``seed`` overrides any ``options["seed"]``; ``priority`` is a lane
    index (0 is most urgent); ``tags`` are free-form labels carried into
    service records for workload attribution.
    """

    graph: CSRGraph
    k: int
    method: str = "gp-metis"
    options: Mapping = field(default_factory=dict)
    seed: int | None = None
    priority: int = 1
    tags: tuple[str, ...] = ()
    machine: MachineSpec | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.graph, CSRGraph):
            raise InvalidParameterError(
                f"graph must be a CSRGraph, got {type(self.graph).__name__}"
            )
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 1:
            raise InvalidParameterError(f"k must be an int >= 1, got {self.k!r}")
        if not isinstance(self.priority, int) or self.priority < 0:
            raise InvalidParameterError(
                f"priority must be an int >= 0, got {self.priority!r}"
            )
        object.__setattr__(self, "options", dict(self.options))
        object.__setattr__(self, "tags", tuple(self.tags))
        if self.seed is not None and "seed" in self.options and (
            self.options["seed"] != self.seed
        ):
            raise InvalidParameterError(
                f"conflicting seeds: request.seed={self.seed} vs "
                f"options['seed']={self.options['seed']}"
            )

    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The canonical registry key (aliases resolved)."""
        from ..api import resolve_method

        return resolve_method(self.method)

    def engine_kwargs(self) -> dict:
        """The option overrides handed to the options dataclass."""
        kwargs = dict(self.options)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def engine_options(self):
        """The fully-resolved options dataclass instance."""
        from ..api import resolve_options

        return resolve_options(self.method, **self.engine_kwargs())

    @property
    def effective_seed(self) -> int | None:
        """The seed the engine will actually run with (options default
        included), mirroring what ``profile_run`` stamps on the ledger."""
        return getattr(self.engine_options(), "seed", None)

    def config(self) -> dict:
        """The ledger-style config block this request resolves to."""
        from ..obs.ledger import options_hash

        opts = self.engine_options()
        return {
            "engine": self.engine,
            "graph": self.graph.name,
            # Content identity, not just the display name: same-named
            # graphs with different arrays must not share a cache entry.
            "graph_digest": self.graph.content_digest,
            "k": int(self.k),
            "seed": getattr(opts, "seed", None),
            "options_hash": options_hash(opts),
        }

    @property
    def fingerprint(self) -> str:
        """The config fingerprint of this request — the result-cache key.

        Digest of :meth:`config`, i.e. the ledger config block extended
        with the graph's CSR content digest, so requests agree exactly
        when engine, graph *content*, k, seed and options all agree."""
        from ..obs.ledger import config_fingerprint

        return config_fingerprint(self.config())

    # ------------------------------------------------------------------
    def build_partitioner(self):
        from ..api import make_partitioner

        return make_partitioner(
            self.method, machine=self.machine, **self.engine_kwargs()
        )

    def run(self) -> PartitionResult:
        """Execute this request synchronously on the calling thread."""
        return self.build_partitioner().partition(self.graph, self.k)

    def with_overrides(self, **changes) -> "PartitionRequest":
        """A copy of this request with fields replaced."""
        return replace(self, **changes)

"""The concurrent partition service: queueing, batching, caching.

:class:`PartitionService` accepts :class:`~repro.service.PartitionRequest`
submissions into bounded per-priority lanes and serves them over a
simulated :class:`~repro.service.workers.WorkerPool` — CPU workers plus
a shared GPU lease so concurrent gp-metis jobs serialize on the one
simulated Titan instead of oversubscribing it.

Concurrency is a *discrete-event simulation*: ``drain`` executes the
queued requests sequentially in deterministic (lane, submission) order
and lays the resulting modeled durations out on the pool's timeline.
Queue waits, latencies and throughput therefore respond to the pool
shape, while partition vectors, cache hit sequences and ledger contents
are bit-identical whatever ``num_workers`` is — the property the
determinism tests pin down.

Served requests hit three cost reducers:

* the **result cache** (:class:`~repro.service.cache.ResultCache`),
  keyed by the request's config fingerprint (the ledger config block
  plus a content digest of the graph's CSR arrays);
* **batching**: requests in one drain sharing (engine, graph) form a
  batch; the first executed miss pays the engine's full modeled cost,
  followers get the one-time CSR build/H2D-transfer seconds
  (the ``csr.*``-labelled transfer charges) refunded, modeling the graph
  arrays already resident on the shared GPU across a k/seed sweep;
* **retries**: transient engine faults (see :mod:`repro.faults`) are
  retried under a :class:`~repro.faults.retry.RetryPolicy`, each backoff
  charged to the request's service time.  Requests carrying a *fault
  plan* are exempt: a plan is a seeded schedule that replays identically
  on every attempt, so a fault the engine's own recovery ladder could
  not absorb can never succeed on a service re-run — those fail fast as
  ``status="failed"`` instead of burning doomed re-executions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..exceptions import (
    GraphFormatError,
    InvalidGraphError,
    InvalidParameterError,
    PartitioningError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from ..faults.retry import RetryPolicy
from ..obs.critical import attribution_totals, request_entry
from ..obs.hw import (
    BOUND_KINDS,
    exposed_span_seconds,
    hw_metrics,
    hw_section,
    transfer_avoidance_ratio,
)
from ..obs.ledger import (
    append_record,
    get_default_ledger,
    ledger_record,
    options_hash,
)
from ..obs.spans import Profiler
from ..obs.tracectx import TraceContext, request_trace_id, use_trace_context
from ..result import PartitionResult
from ..runtime.clock import SimClock
from ..runtime.hwcount import HwCounters
from ..runtime.machine import PAPER_MACHINE
from .cache import ResultCache
from .request import PartitionRequest
from .stats import ServiceStats
from .workers import GPU_ENGINES, WorkerPool

__all__ = ["ServiceConfig", "Ticket", "PartitionService"]

#: Engine errors worth retrying: simulated-hardware transients.  Input
#: and algorithm errors are deterministic rejections — retrying them
#: would burn the budget to reach the same exception.
_NON_RETRYABLE = (
    InvalidParameterError,
    InvalidGraphError,
    GraphFormatError,
    PartitioningError,
    ServiceError,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Shape and policy of one :class:`PartitionService`."""

    num_workers: int = 4
    #: Concurrent GPU jobs the pool supports (the paper testbed has 1).
    gpu_slots: int = 1
    #: Admission limit per priority lane; a full lane rejects with
    #: :class:`~repro.exceptions.ServiceOverloadedError`.
    queue_limit: int = 64
    num_lanes: int = 3
    cache_entries: int = 128
    cache_enabled: bool = True
    batching: bool = True
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Fixed per-request dispatch overhead (modeled seconds).
    dispatch_seconds: float = 5e-6
    #: Optional JSONL ledger receiving one ``engine="service"`` record
    #: per drain (engine runs append their own records through the
    #: process-default ledger as usual).
    ledger: str | None = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise InvalidParameterError("num_workers must be >= 1")
        if self.num_lanes < 1:
            raise InvalidParameterError("num_lanes must be >= 1")
        if self.queue_limit < 1:
            raise InvalidParameterError("queue_limit must be >= 1")
        if self.dispatch_seconds < 0:
            raise InvalidParameterError("dispatch_seconds must be >= 0")


@dataclass
class Ticket:
    """The service's view of one submitted request, updated in place."""

    request: PartitionRequest
    seq: int
    lane: int
    engine: str
    fingerprint: str
    submitted_at: float
    status: str = "queued"  # queued | served | failed
    cache: str = "pending"  # pending | hit | miss | bypass
    result: PartitionResult | None = None
    error: Exception | None = None
    worker: int | None = None
    gpu_slot: int | None = None
    started_at: float = 0.0
    finished_at: float = 0.0
    queue_wait: float = 0.0
    service_seconds: float = 0.0
    latency: float = 0.0
    retries: int = 0
    retry_seconds: float = 0.0
    batch_id: int | None = None
    batch_leader: bool = False
    amortized_seconds: float = 0.0
    #: Slice of ``queue_wait`` spent behind this ticket's batch leader.
    batch_wait: float = 0.0
    #: Deterministic trace id (set at drain time; see repro.obs.tracectx).
    trace_id: str = ""
    #: Causal links to other traces (batch follower -> leader engine run).
    links: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "served"


def _csr_setup_seconds(result: PartitionResult) -> float:
    """The one-time CSR H2D transfer cost inside a result's run — the
    seconds a same-graph batch follower does not pay again.

    Only *exposed* seconds are refundable: under the async-streams
    schedule part of the CSR upload hides behind kernels and never
    reaches the critical path, so skipping it saves nothing.  Falls back
    to the clock's event sum when no profiler observed the run (the
    serial path, where nothing overlaps and the two agree).
    """
    profiler = getattr(result, "profiler", None)
    if profiler is not None:
        csr_spans = [
            s for s in profiler.root.find_category("transfer")
            if s.name.startswith("h2d.csr.")
        ]
        if csr_spans:
            return exposed_span_seconds(
                csr_spans, profiler.root.find_category("kernel")
            )
    return sum(
        e.seconds
        for e in result.clock.events
        if e.category in ("transfer_latency", "transfer_bytes")
        and e.detail.startswith("csr.")
    )


def _csr_setup_bytes(result: PartitionResult) -> tuple[float, int]:
    """(bytes, transfer count) of the CSR H2D charges in a result's clock
    — the PCIe traffic a batch follower did not actually generate."""
    nbytes = 0.0
    transfers = 0
    for e in result.clock.events:
        if not e.detail.startswith("csr."):
            continue
        if e.category == "transfer_bytes":
            nbytes += e.count
        elif e.category == "transfer_latency":
            transfers += int(e.count)
    return nbytes, transfers


class PartitionService:
    """Deterministic discrete-event partition service over a worker pool."""

    def __init__(self, config: ServiceConfig | None = None, **overrides) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise InvalidParameterError(
                "pass either a ServiceConfig or keyword overrides, not both"
            )
        self.config = config
        self.pool = WorkerPool(config.num_workers, config.gpu_slots)
        self.cache = ResultCache(config.cache_entries)
        self.stats = ServiceStats()
        self.clock = SimClock()
        self._lanes: list[deque[Ticket]] = [deque() for _ in range(config.num_lanes)]
        self._seq = 0
        self._drains = 0
        self._batch_ids = 0
        #: Lifetime counter values already reported by earlier drain
        #: records — each drain's ledger record carries the delta.
        self._counter_marks: dict[str, float] = {}
        self.now = 0.0
        #: Profiler of the most recent drain (for ledger/gate harnesses).
        self.last_profiler: Profiler | None = None

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return sum(len(lane) for lane in self._lanes)

    def lane_of(self, request: PartitionRequest) -> int:
        return min(request.priority, self.config.num_lanes - 1)

    def submit(self, request: PartitionRequest) -> Ticket:
        """Admit a request into its priority lane.

        Resolves the engine and fingerprint eagerly, so malformed
        requests fail here — not on a worker — and raises
        :class:`~repro.exceptions.ServiceOverloadedError` when the lane
        is at ``queue_limit``.
        """
        if not isinstance(request, PartitionRequest):
            raise InvalidParameterError(
                f"submit takes a PartitionRequest, got {type(request).__name__}"
            )
        lane = self.lane_of(request)
        if len(self._lanes[lane]) >= self.config.queue_limit:
            self.stats.record_rejection(lane)
            raise ServiceOverloadedError(
                f"lane {lane} is full ({self.config.queue_limit} queued); "
                "drain the service or lower the request rate",
                lane=lane,
                queued=len(self._lanes[lane]),
                limit=self.config.queue_limit,
            )
        ticket = Ticket(
            request=request,
            seq=self._seq,
            lane=lane,
            engine=request.engine,
            fingerprint=request.fingerprint,
            submitted_at=self.now,
        )
        self._seq += 1
        self._lanes[lane].append(ticket)
        self.stats.record_submit(lane)
        return ticket

    # ------------------------------------------------------------------
    def _execute(self, ticket: Ticket):
        """Run the engine with fault-plan-aware retries.

        Returns ``(result, error)``; retry backoffs accumulate on the
        ticket.  Non-retryable errors (bad input, algorithm failure)
        surface immediately, and so do faults from a request that
        carries a fault plan: the plan is a deterministic schedule, so
        re-running the engine replays the identical fault sequence and a
        service-level retry can never succeed.
        """
        policy = self.config.retry_policy
        deterministic = (
            getattr(ticket.request.engine_options(), "fault_plan", None) is not None
        )
        max_retries = 0 if deterministic else policy.max_retries
        while True:
            try:
                return ticket.request.run(), None
            except _NON_RETRYABLE as exc:
                return None, exc
            except ReproError as exc:
                if ticket.retries >= max_retries:
                    return None, exc
                ticket.retries += 1
                ticket.retry_seconds += policy.backoff(ticket.retries)
                self.stats.record_retry()

    def _serve_hit(self, ticket: Ticket, entry, t0: float) -> None:
        ticket.status = "served"
        ticket.cache = "hit"
        ticket.result = entry.result
        ticket.started_at = t0
        ticket.finished_at = t0 + self.config.dispatch_seconds
        ticket.queue_wait = t0 - ticket.submitted_at
        ticket.service_seconds = self.config.dispatch_seconds
        ticket.latency = ticket.finished_at - ticket.submitted_at

    def _serve_miss(
        self, ticket: Ticket, batch_state: dict, t0: float, ctx: TraceContext
    ) -> None:
        # The engine profiler adopts the request's trace context, so the
        # whole phase/kernel/transfer tree (and any nested fallback
        # engine) joins this ticket's trace under its engine-run span.
        with use_trace_context(ctx):
            result, error = self._execute(ticket)
        key = (ticket.engine, id(ticket.request.graph))
        state = batch_state.setdefault(
            key, {"id": None, "paid": False, "members": 0, "leader": None}
        )
        if result is not None:
            setup = _csr_setup_seconds(result)
            if self.config.batching and setup > 0:
                if state["paid"]:
                    ticket.amortized_seconds = setup
                    leader = state["leader"]
                    if leader is not None:
                        # Causal link, not parentage: the follower's run
                        # amortizes the leader's CSR transfer.
                        ticket.links.append({
                            "trace_id": leader.trace_id,
                            "span_id": f"{leader.trace_id}:run",
                        })
                else:
                    state["paid"] = True
                    ticket.batch_leader = True
                    state["leader"] = ticket
                state["members"] += 1
                if state["id"] is None:
                    state["id"] = self._batch_ids
                    self._batch_ids += 1
                ticket.batch_id = state["id"]
            seconds = max(0.0, result.modeled_seconds - ticket.amortized_seconds)
            ticket.status = "served"
            ticket.result = result
            if self.config.cache_enabled:
                self.cache.put(ticket.fingerprint, ticket.request.config(), result)
        else:
            seconds = 0.0
            ticket.status = "failed"
            ticket.error = error
        seconds += ticket.retry_seconds + self.config.dispatch_seconds
        assignment = self.pool.assign(
            t0, seconds, needs_gpu=ticket.engine in GPU_ENGINES
        )
        ticket.worker = assignment.worker
        ticket.gpu_slot = assignment.gpu_slot
        ticket.started_at = assignment.start
        ticket.finished_at = assignment.start + seconds
        ticket.queue_wait = assignment.start - ticket.submitted_at
        ticket.service_seconds = seconds
        ticket.latency = ticket.finished_at - ticket.submitted_at
        leader = state["leader"]
        if leader is not None and leader is not ticket:
            # Queue time spent waiting behind the batch leader's run.
            ticket.batch_wait = max(
                0.0,
                min(ticket.started_at, leader.finished_at)
                - max(ticket.submitted_at, leader.started_at),
            )

    # ------------------------------------------------------------------
    def drain(self) -> list[Ticket]:
        """Serve every queued request; returns the tickets in service order.

        Execution order is (lane, submission sequence) — independent of
        the pool shape — so results and cache behaviour are identical
        across worker counts; only the timeline metadata changes.
        """
        tickets: list[Ticket] = []
        for lane in self._lanes:
            while lane:
                tickets.append(lane.popleft())
        tickets.sort(key=lambda t: (t.lane, t.seq))
        if not tickets:
            return []
        t0 = self.now
        self._drains += 1
        self.pool.reset_accounting()
        profiler = Profiler(
            self.clock,
            name=f"service drain {self._drains}",
            category="run",
            engine="service",
            graph=self._workload_label(tickets),
            num_vertices=0,
            num_edges=0,
            k=len(tickets),
            seed=0,
            options_hash=options_hash(
                {
                    "num_workers": self.config.num_workers,
                    "gpu_slots": self.config.gpu_slots,
                    "queue_limit": self.config.queue_limit,
                    "requests": [t.fingerprint for t in tickets],
                }
            ),
        )
        self.clock.set_phase("serve")
        cache_before = self.cache.stats()
        batch_state: dict = {}
        for ticket in tickets:
            ticket.trace_id = request_trace_id(
                ticket.fingerprint, self._drains, ticket.seq
            )
            entry = self.cache.get(ticket.fingerprint) if self.config.cache_enabled else None
            if not self.config.cache_enabled:
                ticket.cache = "bypass"
            if entry is not None:
                self._serve_hit(ticket, entry, t0)
            else:
                if ticket.cache != "bypass":
                    ticket.cache = "miss"
                ctx = TraceContext(ticket.trace_id, f"{ticket.trace_id}:run")
                self._serve_miss(ticket, batch_state, t0, ctx)
            self._add_request_spans(profiler, ticket)
            self.stats.record_ticket(ticket)
        entries = [
            request_entry(
                ticket,
                dispatch_seconds=self.config.dispatch_seconds,
                batch_wait=ticket.batch_wait,
                links=ticket.links,
            )
            for ticket in tickets
        ]
        for bucket, seconds in attribution_totals(entries).items():
            profiler.metrics.counter(
                f"service.attribution.{bucket}_seconds"
            ).inc(seconds)
        makespan_end = max(t.finished_at for t in tickets)
        served = sum(1 for t in tickets if t.ok)
        batches = sum(1 for s in batch_state.values() if s["members"] >= 2)
        self.clock.charge(
            "sync", makespan_end - t0, count=len(tickets), detail="serve makespan"
        )
        self.now = makespan_end
        makespan = makespan_end - t0
        utilization = self.pool.utilization(since=t0)
        self.stats.record_drain(
            makespan=makespan, served=served, utilization=utilization,
            batches=batches,
        )
        self.stats.record_cache(self.cache.stats())
        drain_hw = self._drain_hw_aggregate(tickets)
        self.stats.record_hw(drain_hw)
        self._fold_drain_metrics(
            profiler, tickets, cache_before,
            makespan=makespan, served=served, utilization=utilization,
            batches=batches,
        )
        profiler.finish(
            served=served,
            failed=len(tickets) - served,
            cache_hits=sum(1 for t in tickets if t.cache == "hit"),
            batches=batches,
        )
        self._attach_drain_hw(profiler, drain_hw)
        self.last_profiler = profiler
        ledger_path = self.config.ledger or get_default_ledger()
        if ledger_path is not None:
            append_record(
                ledger_path,
                ledger_record(profiler, sections={"requests": entries}),
            )
        return tickets

    def _add_request_spans(self, profiler: Profiler, ticket: Ticket) -> None:
        """File one ticket's span subtree under the drain profiler.

        The subtree lives in the *request's* trace (not the drain's):
        ``request -> queue-wait -> dispatch -> [retry] -> [engine-run]``,
        with deterministic span ids derived from the trace id so they
        are identical whatever the worker-pool shape.  The engine-run
        span id is exactly the context the engine profiler adopted in
        :meth:`_serve_miss`, which stitches the engine's own span tree
        (a separate profiler, a separate ledger record) onto this
        request as a child.
        """
        tid = ticket.trace_id
        req = profiler.add_span(
            f"{ticket.engine} {ticket.request.graph.name}",
            ticket.submitted_at,
            ticket.finished_at,
            category="request",
            trace_id=tid,
            span_id=f"{tid}:req",
            engine=ticket.engine,
            k=ticket.request.k,
            lane=ticket.lane,
            cache=ticket.cache,
            status=ticket.status,
            worker=ticket.worker,
            queue_wait=ticket.queue_wait,
            fingerprint=ticket.fingerprint,
        )
        if ticket.started_at > ticket.submitted_at:
            profiler.add_span(
                "queue-wait", ticket.submitted_at, ticket.started_at,
                category="queue", parent=req, trace_id=tid,
                span_id=f"{tid}:queue", lane=ticket.lane,
                batch_wait=ticket.batch_wait,
            )
        cursor = ticket.started_at
        profiler.add_span(
            "dispatch", cursor, cursor + self.config.dispatch_seconds,
            category="dispatch", parent=req, trace_id=tid,
            span_id=f"{tid}:dispatch", worker=ticket.worker,
        )
        cursor += self.config.dispatch_seconds
        if ticket.retry_seconds > 0:
            profiler.add_span(
                "retry-backoff", cursor, cursor + ticket.retry_seconds,
                category="retry", parent=req, trace_id=tid,
                span_id=f"{tid}:retry", retries=ticket.retries,
            )
            cursor += ticket.retry_seconds
        if ticket.result is not None and ticket.cache != "hit":
            profiler.add_span(
                "engine-run", cursor, ticket.finished_at,
                category="engine-run", parent=req, trace_id=tid,
                span_id=f"{tid}:run", links=tuple(ticket.links),
                engine=ticket.engine,
                amortized_seconds=ticket.amortized_seconds,
            )

    def _fold_drain_metrics(
        self, profiler: Profiler, tickets: list[Ticket], cache_before: dict, *,
        makespan: float, served: int, utilization: float, batches: int,
    ) -> None:
        """Copy a *per-drain* view of the ``service.*`` metrics into the
        drain's ledger record.

        The lifetime :class:`ServiceStats` registry keeps accumulating
        across drains (that is what :meth:`snapshot` reports), but each
        ledger record must stand alone: counters go in as deltas since
        the previous drain's record, and latency/queue-wait/cache gauges
        are recomputed over this drain's tickets only — otherwise a
        multi-drain run appends records whose totals double-count and
        whose percentiles span every earlier drain.
        """
        drain_stats = ServiceStats()
        for ticket in tickets:
            drain_stats.record_ticket(ticket)
        drain_stats.record_drain(
            makespan=makespan, served=served, utilization=utilization,
            batches=batches,
        )
        cache_now = self.cache.stats()
        hits = cache_now["hits"] - cache_before["hits"]
        lookups = hits + cache_now["misses"] - cache_before["misses"]
        drain_stats.record_cache({
            "entries": cache_now["entries"],
            "hit_rate": hits / lookups if lookups else 0.0,
            "saved_seconds": (
                cache_now["saved_seconds"] - cache_before["saved_seconds"]
            ),
        })
        for key, counter in self.stats.metrics.counters.items():
            profiler.metrics.counter(key).inc(
                counter.value - self._counter_marks.get(key, 0.0)
            )
            self._counter_marks[key] = counter.value
        for key, gauge in drain_stats.metrics.gauges.items():
            profiler.metrics.gauge(key).set(gauge.value)
        # Transplant the per-drain latency/queue-wait histograms (global
        # and per-lane) so the record's summaries cover this drain only.
        for key, hist in drain_stats.metrics.histograms.items():
            profiler.metrics.histograms[key] = hist

    def _drain_hw_aggregate(self, tickets: list[Ticket]) -> dict:
        """Hardware traffic this drain actually generated, summed over the
        tickets that ran an engine (cache hits moved no new bytes).

        Batch followers are credited for the CSR setup transfers the
        leader's device-resident graph satisfied: :meth:`_serve_miss`
        refunded the *seconds*, and the same ``csr.*`` charges identify
        the *bytes* that never crossed PCIe — exactly the traffic the
        transfer-avoidance ratio must not count against the bus.
        """
        counters = HwCounters()
        pcie_bytes = pcie_seconds = pcie_exposed = 0.0
        pcie_transfers = 0
        gpu_bytes = gpu_ops = gpu_seconds = coal_weighted = 0.0
        bound_seconds = {kind: 0.0 for kind in BOUND_KINDS}
        saw_gpu = False
        for t in tickets:
            if t.result is None or t.cache == "hit":
                continue
            run_prof = getattr(t.result, "profiler", None)
            if getattr(run_prof, "hw_counters", None) is not None:
                counters.merge(run_prof.hw_counters)
            run_hw = getattr(run_prof, "hw", None)
            if not run_hw:
                continue
            p = run_hw["pcie"]
            nbytes, transfers, seconds = p["bytes"], p["transfers"], p["seconds"]
            exposed = p.get("exposed_seconds", seconds)
            if t.amortized_seconds > 0.0:
                csr_bytes, csr_transfers = _csr_setup_bytes(t.result)
                nbytes = max(0.0, nbytes - csr_bytes)
                transfers = max(0, transfers - csr_transfers)
                # The refund is the exposed CSR cost; total seconds drop
                # by the same amount the latency refund gave back.
                refund = _csr_setup_seconds(t.result)
                seconds = max(0.0, seconds - refund)
                exposed = max(0.0, exposed - refund)
            pcie_bytes += nbytes
            pcie_transfers += transfers
            pcie_seconds += seconds
            pcie_exposed += min(exposed, seconds)
            g = run_hw.get("gpu")
            if g is not None:
                saw_gpu = True
                gpu_bytes += g["bytes_moved"]
                gpu_ops += g["compute_ops"]
                gpu_seconds += g["kernel_seconds"]
                coal_weighted += g["coalescing"] * g["bytes_moved"]
                for kind, sec in g["bound_seconds"].items():
                    bound_seconds[kind] = bound_seconds.get(kind, 0.0) + sec
        return {
            "requests": len(tickets),
            "counters": counters,
            "pcie": {
                "bytes": pcie_bytes,
                "transfers": pcie_transfers,
                "seconds": pcie_seconds,
                "exposed_seconds": pcie_exposed,
            },
            "gpu": {
                "bytes_moved": gpu_bytes,
                "compute_ops": gpu_ops,
                "kernel_seconds": gpu_seconds,
                "coalescing_weighted": coal_weighted,
                "bound_seconds": bound_seconds,
            } if saw_gpu else None,
            "transfer_avoidance": transfer_avoidance_ratio(gpu_bytes, pcie_bytes),
            "bytes_per_request": pcie_bytes / len(tickets) if tickets else 0.0,
        }

    def _attach_drain_hw(self, profiler: Profiler, agg: dict) -> None:
        """Assemble the drain record's ``hw`` block and ``hw.*`` metrics.

        The drain profiler itself only charges scheduling bookkeeping, so
        its own counters are empty; the block carries the per-ticket
        aggregate from :meth:`_drain_hw_aggregate` instead, scored against
        the paper testbed's peaks (per-engine machine variants are scored
        in their own run records).
        """
        machine = PAPER_MACHINE
        section = hw_section(profiler, machine)
        counters = agg["counters"].as_dict()
        section["cpu"] = counters["cpu"]
        section["mpi"] = counters["mpi"]
        net = machine.interconnect
        p = agg["pcie"]
        seconds = p["seconds"]
        section["pcie"] = {
            "transfers": p["transfers"],
            "bytes": p["bytes"],
            "seconds": seconds,
            "exposed_seconds": p["exposed_seconds"],
            "overlap_ratio": (
                min(1.0, max(0.0, 1.0 - p["exposed_seconds"] / seconds))
                if seconds else 0.0
            ),
            "utilization": (
                min(1.0, p["bytes"] / net.pcie_bytes_per_sec / seconds)
                if seconds else 0.0
            ),
            "alpha_share": (
                min(1.0, p["transfers"] * net.pcie_latency_seconds / seconds)
                if seconds else 0.0
            ),
            "peak_bandwidth": net.pcie_bytes_per_sec,
            "bytes_per_request": agg["bytes_per_request"],
        }
        g = agg["gpu"]
        if g is not None:
            gpu_spec = machine.gpu
            ksec = g["kernel_seconds"]
            section["gpu"] = {
                "peak_bandwidth": gpu_spec.bandwidth_bytes_per_sec,
                "peak_flops": gpu_spec.compute_ops_per_sec,
                "kernel_seconds": ksec,
                "bytes_moved": g["bytes_moved"],
                "compute_ops": g["compute_ops"],
                "dram_utilization": (
                    min(1.0, g["bytes_moved"] / ksec / gpu_spec.bandwidth_bytes_per_sec)
                    if ksec else 0.0
                ),
                "compute_utilization": (
                    min(1.0, g["compute_ops"] / ksec / gpu_spec.compute_ops_per_sec)
                    if ksec else 0.0
                ),
                "coalescing": (
                    min(1.0, g["coalescing_weighted"] / g["bytes_moved"])
                    if g["bytes_moved"] else 1.0
                ),
                "bound_seconds": g["bound_seconds"],
                "kernels": [],
            }
            section["transfer_avoidance"] = agg["transfer_avoidance"]
        profiler.hw = section
        hw_metrics(profiler.metrics, section)
        profiler.metrics.gauge("hw.pcie.bytes_per_request").set(
            agg["bytes_per_request"]
        )

    def serve(self, requests) -> list[Ticket]:
        """Submit a batch of requests and drain; rejected submissions
        raise — use :meth:`submit` directly for shedding semantics."""
        for request in requests:
            self.submit(request)
        return self.drain()

    # ------------------------------------------------------------------
    def invalidate(self, fingerprint: str | None = None, *, graph: str | None = None,
                   engine: str | None = None) -> int:
        """Explicitly drop cache entries (see :meth:`ResultCache.invalidate`)."""
        removed = self.cache.invalidate(fingerprint, graph=graph, engine=engine)
        self.stats.record_invalidation(removed)
        return removed

    @staticmethod
    def _workload_label(tickets: list[Ticket]) -> str:
        names = {t.request.graph.name for t in tickets}
        return names.pop() if len(names) == 1 else "mixed"

    def snapshot(self) -> dict:
        """JSON-ready state: headline stats + cache + pool breakdowns."""
        out = self.stats.snapshot()
        out["cache"] = self.cache.stats()
        out["pool"] = self.pool.stats()
        out["queued"] = self.queued
        out["now"] = self.now
        return out

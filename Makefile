PYTHON ?= python
export PYTHONPATH := src

.PHONY: check tier1 sanitize-smoke profile-smoke baseline fuzz bench test

# The gate: tier-1 suite + the sanitizer and observability self-checks.
check: tier1 sanitize-smoke profile-smoke

# Tier-1: the fast suite (fuzz/bench-marked tests excluded via pyproject).
tier1:
	$(PYTHON) -m pytest -x -q

# Race-sanitizer self-check: clean pipeline race-free, planted race caught.
sanitize-smoke:
	$(PYTHON) -m repro sanitize

# Observability self-check: profile a tiny graph, export both formats,
# schema-validate the JSON, require the per-engine metric set.
profile-smoke:
	$(PYTHON) benchmarks/profile_smoke.py

# Perf gate: diff the profiled workload against benchmarks/BENCH_profile.json
# (seeds the baseline on first run; --update after intentional perf changes).
baseline:
	$(PYTHON) benchmarks/baseline.py

# Long adversarial-schedule sweeps (not part of tier-1).
fuzz:
	$(PYTHON) -m pytest -q -m fuzz

# Slow end-to-end benchmark tests (bench-marked, not part of tier-1).
bench:
	$(PYTHON) -m pytest -q -m bench

test: check

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check tier1 sanitize-smoke fuzz test

# The gate: tier-1 suite + the sanitizer self-check.
check: tier1 sanitize-smoke

# Tier-1: the fast suite (fuzz-marked sweeps excluded via pyproject).
tier1:
	$(PYTHON) -m pytest -x -q

# Race-sanitizer self-check: clean pipeline race-free, planted race caught.
sanitize-smoke:
	$(PYTHON) -m repro sanitize

# Long adversarial-schedule sweeps (not part of tier-1).
fuzz:
	$(PYTHON) -m pytest -q -m fuzz

test: check

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check tier1 sanitize-smoke faults-smoke profile-smoke roofline-smoke overlap-smoke serve-smoke slo-smoke baseline gate report fuzz faults bench test

# The gate: tier-1 suite + the sanitizer, fault-injection, observability,
# hardware-utilization, async-overlap, partition-service and SLO
# self-checks + the policy-driven perf-regression gate on the committed
# ledger.
check: tier1 sanitize-smoke faults-smoke profile-smoke roofline-smoke overlap-smoke serve-smoke slo-smoke gate

# Tier-1: the fast suite (fuzz/bench-marked tests excluded via pyproject).
tier1:
	$(PYTHON) -m pytest -x -q

# Race-sanitizer self-check: clean pipeline race-free, planted race caught.
sanitize-smoke:
	$(PYTHON) -m repro sanitize

# Fault-injection self-check: survive the exhaustive fault storm with a
# valid partition, then prove the mutation (recovery off) crashes.
faults-smoke:
	$(PYTHON) -m repro faults --self-check

# Observability self-check: profile a tiny graph, export both formats,
# schema-validate the JSON, require the per-engine metric set.
profile-smoke:
	$(PYTHON) benchmarks/profile_smoke.py

# Hardware-utilization smoke: a fresh GP-metis run must produce a valid
# hw section (utilizations in [0,1], phase slices summing to phase time,
# classified kernel bounds) and render the roofline chart + table; the
# committed baseline ledger's newest record must render too.
roofline-smoke:
	$(PYTHON) -m repro roofline -n 20000 -k 8 --json - > /dev/null
	$(PYTHON) -m repro roofline --ledger benchmarks/BENCH_ledger.jsonl \
		--no-chart > /dev/null

# Async-streams overlap smoke: GP-metis on every paper dataset with
# streams on vs off must produce byte-identical partition vectors while
# strictly reducing end-to-end simulated seconds and exposed PCIe time.
overlap-smoke:
	$(PYTHON) benchmarks/overlap_smoke.py

# Partition-service acceptance: 100-request mixed workload over 4 workers,
# every served vector differentially verified against a direct partition()
# call; exits non-zero on drops, failures, a cold cache or a verify mismatch.
serve-smoke:
	$(PYTHON) -m repro bench --service --workers 4 --no-json

# SLO monitor smoke: the committed baseline ledger must meet the declared
# objectives (self-baselined so quality ratios evaluate), and a freshly
# served workload must pass the same policy end-to-end, including the
# per-request waterfall + Chrome-trace export.
slo-smoke:
	$(PYTHON) -m repro slo benchmarks/BENCH_ledger.jsonl \
		--policy benchmarks/slo_policy.json \
		--baseline benchmarks/BENCH_ledger.jsonl
	rm -f .slo_smoke_ledger.jsonl
	$(PYTHON) -m repro serve --requests 40 --graph-n 400 \
		--ledger .slo_smoke_ledger.jsonl > /dev/null
	$(PYTHON) -m repro slo .slo_smoke_ledger.jsonl \
		--policy benchmarks/slo_policy.json
	$(PYTHON) -m repro trace .slo_smoke_ledger.jsonl \
		--trace-out .slo_smoke_trace.json
	rm -f .slo_smoke_ledger.jsonl .slo_smoke_trace.json

# Perf gate: diff the profiled workload against benchmarks/BENCH_profile.json
# (seeds the baseline on first run; --update after intentional perf changes).
# Subsumed by `make gate`, kept for the old snapshot format.
baseline:
	$(PYTHON) benchmarks/baseline.py

# Generalized perf-regression gate: fresh runs of the gate workload vs the
# committed baseline ledger, under the multi-metric tolerance policy.
# After an intentional perf change: `python -m repro gate --baseline
# benchmarks/BENCH_ledger.jsonl --policy benchmarks/gate_policy.json --update`
# and commit the rewritten ledger with the PR that moved it.
gate:
	$(PYTHON) -m repro gate --baseline benchmarks/BENCH_ledger.jsonl \
		--policy benchmarks/gate_policy.json

# Render the committed baseline ledger as a self-contained HTML report.
report:
	$(PYTHON) -m repro report --ledger benchmarks/BENCH_ledger.jsonl -o report.html

# Long adversarial-schedule sweeps (not part of tier-1).
fuzz:
	$(PYTHON) -m pytest -q -m fuzz

# Differential fault matrix: plans x engines (faults-marked, not tier-1).
faults:
	$(PYTHON) -m pytest -q -m faults

# Slow end-to-end benchmark tests (bench-marked, not part of tier-1).
bench:
	$(PYTHON) -m pytest -q -m bench

test: check
